// Package admission implements overload protection in front of the engine:
// a bounded in-flight concurrency limit (semaphore) with queue-deadline
// shedding, and an optional AIMD (additive-increase / multiplicative-
// decrease) adaptive limit driven by measured commit latency.
//
// The controller sits between the load-generating layer (harness, bench
// CLI, a future network front end) and Engine: every transaction Acquires a
// slot before executing and Releases it after, reporting its service
// latency. Under offered load beyond capacity the controller keeps the
// number of transactions inside the engine bounded — so the work the engine
// does is always fresh work — and sheds the excess quickly instead of
// queueing it into uselessness. That is the difference between goodput that
// tracks capacity and the classic open-loop latency collapse.
//
// Shedding is deliberately cheap: a shed transaction costs one mutex
// acquisition and no engine state, which is what lets the engine survive
// offered loads many multiples past saturation.
package admission

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// ErrShed is returned by Acquire when the transaction is rejected — its
// admission wait hit the queue deadline (or the transaction's own
// deadline), or the waiter queue itself is full. Shed transactions never
// touched the engine; callers account them as ShedAborts.
var ErrShed = errors.New("admission: shed by admission control")

// Config parameterizes a Controller. The zero value of optional fields
// selects the documented defaults.
type Config struct {
	// MaxInFlight is the hard ceiling on concurrently admitted
	// transactions (the semaphore size, and the AIMD upper bound).
	// <= 0 selects 2 × GOMAXPROCS.
	MaxInFlight int
	// MaxQueueWait bounds how long Acquire may wait for a slot before
	// shedding. 0 means the wait is bounded only by the transaction's own
	// deadline (and is unbounded when that is zero too).
	MaxQueueWait time.Duration
	// MaxWaiters bounds the admission queue length: an Acquire arriving
	// when this many waiters are already queued is shed immediately.
	// 0 means unbounded.
	MaxWaiters int

	// TargetLatency enables the AIMD adaptive limit: while the EWMA of
	// reported transaction latencies exceeds the target, the limit decays
	// multiplicatively toward MinLimit; while it is at or under the
	// target, the limit recovers additively toward MaxInFlight. 0 keeps
	// the limit fixed at MaxInFlight.
	TargetLatency time.Duration
	// MinLimit is the adaptive limit's floor. <= 0 selects 1.
	MinLimit int
	// DecreaseFactor is the multiplicative decrease applied when latency
	// is over target (0 < f < 1). Out of range selects 0.7.
	DecreaseFactor float64
	// IncreaseStep is the additive increase applied when latency is at or
	// under target. <= 0 selects 1.
	IncreaseStep int
	// AdjustEvery is the minimum interval between limit adjustments, so
	// one burst of samples cannot collapse the limit in a single tick.
	// <= 0 selects max(2 × TargetLatency, 1ms).
	AdjustEvery time.Duration
}

// ewmaAlpha is the smoothing factor of the latency EWMA: ~5-sample memory,
// quick enough to track an overload onset within a handful of commits.
const ewmaAlpha = 0.2

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MinLimit > c.MaxInFlight {
		c.MinLimit = c.MaxInFlight
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.7
	}
	if c.IncreaseStep <= 0 {
		c.IncreaseStep = 1
	}
	if c.AdjustEvery <= 0 {
		c.AdjustEvery = 2 * c.TargetLatency
		if c.AdjustEvery < time.Millisecond {
			c.AdjustEvery = time.Millisecond
		}
	}
	return c
}

// Stats is a point-in-time snapshot of a Controller.
type Stats struct {
	// Admitted and Shed count Acquire outcomes since construction.
	Admitted uint64
	Shed     uint64
	// InFlight is the number of currently admitted transactions.
	InFlight int
	// Limit is the current concurrency limit (== MaxInFlight when AIMD is
	// off).
	Limit int
	// LatencyEWMA is the current latency estimate driving AIMD (0 when
	// AIMD is off or no sample has been reported).
	LatencyEWMA time.Duration
}

// Controller is the admission gate. It is safe for concurrent use by any
// number of goroutines.
type Controller struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	limit       int
	inFlight    int
	waiters     int
	admitted    uint64
	shed        uint64
	unavailable bool

	ewma       float64 // nanoseconds
	lastAdjust int64   // Unix nanoseconds of the last limit adjustment
}

// New builds a Controller from cfg.
func New(cfg Config) *Controller {
	cfg = cfg.normalized()
	c := &Controller{cfg: cfg, limit: cfg.MaxInFlight}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Acquire admits the caller or sheds it. deadline is the transaction's own
// absolute deadline in Unix nanoseconds (0 = none); the effective admission
// deadline is the earlier of it and now + MaxQueueWait. On success the
// caller owns one in-flight slot and must Release it exactly once.
func (c *Controller) Acquire(deadline int64) error {
	if q := c.cfg.MaxQueueWait; q > 0 {
		qdl := time.Now().UnixNano() + int64(q)
		if deadline == 0 || qdl < deadline {
			deadline = qdl
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.unavailable {
		c.shed++
		return ErrShed
	}
	if c.inFlight < c.limit {
		c.inFlight++
		c.admitted++
		return nil
	}
	if mw := c.cfg.MaxWaiters; mw > 0 && c.waiters >= mw {
		c.shed++
		return ErrShed
	}
	c.waiters++
	defer func() { c.waiters-- }()
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for c.inFlight >= c.limit {
		if c.unavailable {
			c.shed++
			return ErrShed
		}
		if deadline != 0 {
			remaining := deadline - time.Now().UnixNano()
			if remaining <= 0 {
				c.shed++
				return ErrShed
			}
			if timer == nil {
				// One timer per blocked Acquire wakes the whole queue at
				// this waiter's deadline; co-waiters re-check their own
				// deadlines and park again. Spurious wakeups are cheap,
				// stranded waiters are not.
				timer = time.AfterFunc(time.Duration(remaining), func() {
					c.mu.Lock()
					c.cond.Broadcast()
					c.mu.Unlock()
				})
			}
		}
		c.cond.Wait()
	}
	c.inFlight++
	c.admitted++
	return nil
}

// Release returns an admitted slot. latency is the transaction's measured
// service latency (queue excluded), fed to the AIMD limit; pass 0 to skip
// the sample (e.g. for shed-adjacent bookkeeping).
func (c *Controller) Release(latency time.Duration) {
	c.mu.Lock()
	c.inFlight--
	if c.cfg.TargetLatency > 0 && latency > 0 {
		c.observe(latency)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// observe folds one latency sample into the EWMA and, at most once per
// AdjustEvery, moves the limit: multiplicative decrease over target,
// additive increase at or under it. Called with c.mu held.
func (c *Controller) observe(latency time.Duration) {
	l := float64(latency)
	if c.ewma == 0 {
		c.ewma = l
	} else {
		c.ewma = (1-ewmaAlpha)*c.ewma + ewmaAlpha*l
	}
	now := time.Now().UnixNano()
	if now-c.lastAdjust < int64(c.cfg.AdjustEvery) {
		return
	}
	c.lastAdjust = now
	if c.ewma > float64(c.cfg.TargetLatency) {
		nl := int(float64(c.limit) * c.cfg.DecreaseFactor)
		if nl < c.cfg.MinLimit {
			nl = c.cfg.MinLimit
		}
		c.limit = nl
	} else if c.limit < c.cfg.MaxInFlight {
		c.limit += c.cfg.IncreaseStep
		if c.limit > c.cfg.MaxInFlight {
			c.limit = c.cfg.MaxInFlight
		}
	}
}

// SetUnavailable flips the controller's availability. While unavailable
// (a quarantined partition's gate during graceful degradation), every
// Acquire sheds immediately with ErrShed — including waiters already
// parked in the queue, which are woken and shed — so the backlog drains
// in bounded time instead of timing out one queue deadline at a time.
// Clearing the flag re-admits normally; already-admitted transactions
// are unaffected either way and still Release as usual.
func (c *Controller) SetUnavailable(down bool) {
	c.mu.Lock()
	if c.unavailable != down {
		c.unavailable = down
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Limit returns the current concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.limit
}

// Snapshot returns current counters and state.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Admitted:    c.admitted,
		Shed:        c.shed,
		InFlight:    c.inFlight,
		Limit:       c.limit,
		LatencyEWMA: time.Duration(c.ewma),
	}
}

package admission

import (
	"errors"
	"sync"
	"testing"
	"time"

	"next700/internal/testutil"
)

func TestFastPathAdmits(t *testing.T) {
	c := New(Config{MaxInFlight: 2})
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.InFlight != 2 || s.Admitted != 2 || s.Shed != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	c.Release(0)
	c.Release(0)
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Fatalf("in-flight after release = %d", s.InFlight)
	}
}

func TestQueueWaitShedsWithinBound(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{MaxInFlight: 1, MaxQueueWait: 30 * time.Millisecond})
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := c.Acquire(0)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if elapsed < 20*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("shed after %v, want ~30ms", elapsed)
	}
	if s := c.Snapshot(); s.Shed != 1 || s.InFlight != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	c.Release(0)
}

func TestTxnDeadlineBoundsAcquire(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	// No MaxQueueWait: the wait is bounded only by the transaction's own
	// deadline.
	c := New(Config{MaxInFlight: 1})
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := c.Acquire(time.Now().Add(25 * time.Millisecond).UnixNano())
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("shed after %v, want ~25ms", elapsed)
	}
	c.Release(0)
}

func TestMaxWaitersShedsImmediately(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{MaxInFlight: 1, MaxWaiters: 1, MaxQueueWait: 5 * time.Second})
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	// One waiter occupies the queue...
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- c.Acquire(0) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		queued := c.waiters
		c.mu.Unlock()
		if queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// ...so the next Acquire sheds at once, without waiting.
	start := time.Now()
	err := c.Acquire(0)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("full-queue shed took %v, want immediate", elapsed)
	}
	c.Release(0)
	if err := <-waiterErr; err != nil {
		t.Fatalf("queued waiter err = %v", err)
	}
	c.Release(0)
}

func TestAIMDDecreasesAndRecovers(t *testing.T) {
	cfg := Config{
		MaxInFlight:   16,
		TargetLatency: time.Millisecond,
		MinLimit:      2,
		AdjustEvery:   time.Millisecond,
	}
	c := New(cfg)
	if c.Limit() != 16 {
		t.Fatalf("initial limit = %d", c.Limit())
	}
	// Sustained over-target latency decays the limit multiplicatively.
	for i := 0; i < 40 && c.Limit() > cfg.MinLimit; i++ {
		if err := c.Acquire(0); err != nil {
			t.Fatal(err)
		}
		c.Release(20 * time.Millisecond)
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Limit(); got != cfg.MinLimit {
		t.Fatalf("limit after sustained overload = %d, want floor %d", got, cfg.MinLimit)
	}
	// Healthy latency recovers it additively to the ceiling. The EWMA has
	// ~5-sample memory, so a few fast samples drain the overload estimate
	// first, then each adjustment tick adds IncreaseStep.
	for i := 0; i < 200 && c.Limit() < cfg.MaxInFlight; i++ {
		if err := c.Acquire(0); err != nil {
			t.Fatal(err)
		}
		c.Release(50 * time.Microsecond)
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Limit(); got != cfg.MaxInFlight {
		t.Fatalf("limit after recovery = %d, want %d", got, cfg.MaxInFlight)
	}
	if s := c.Snapshot(); s.InFlight != 0 {
		t.Fatalf("in-flight = %d after balanced acquire/release", s.InFlight)
	}
}

func TestConfigDefaults(t *testing.T) {
	n := Config{}.normalized()
	if n.MaxInFlight <= 0 || n.MinLimit != 1 || n.DecreaseFactor != 0.7 || n.IncreaseStep != 1 {
		t.Fatalf("normalized zero config = %+v", n)
	}
	n = Config{MaxInFlight: 2, MinLimit: 10}.normalized()
	if n.MinLimit != 2 {
		t.Fatalf("MinLimit not clamped to MaxInFlight: %+v", n)
	}
	n = Config{TargetLatency: 5 * time.Millisecond}.normalized()
	if n.AdjustEvery != 10*time.Millisecond {
		t.Fatalf("AdjustEvery default = %v", n.AdjustEvery)
	}
}

func TestConcurrentAcquireReleaseInvariants(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{MaxInFlight: 4, MaxQueueWait: 5 * time.Millisecond})
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	var admittedN, shedN int64
	var mu sync.Mutex
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localA, localS := int64(0), int64(0)
			for i := 0; i < perG; i++ {
				if err := c.Acquire(0); err != nil {
					localS++
					continue
				}
				localA++
				c.Release(time.Microsecond)
			}
			mu.Lock()
			admittedN += localA
			shedN += localS
			mu.Unlock()
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.InFlight != 0 {
		t.Fatalf("in-flight = %d after all goroutines finished", s.InFlight)
	}
	if s.Admitted != uint64(admittedN) || s.Shed != uint64(shedN) {
		t.Fatalf("controller counted admitted=%d shed=%d, callers saw %d/%d",
			s.Admitted, s.Shed, admittedN, shedN)
	}
	if admittedN+shedN != goroutines*perG {
		t.Fatalf("outcomes %d+%d != attempts %d", admittedN, shedN, goroutines*perG)
	}
}

func TestSetUnavailableShedsImmediatelyAndWakesWaiters(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{MaxInFlight: 1})
	if err := c.Acquire(0); err != nil {
		t.Fatal(err)
	}
	// Park a waiter with no deadline: only SetUnavailable can release it.
	waiterErr := make(chan error, 1)
	go func() { waiterErr <- c.Acquire(0) }()
	deadlineAt := time.Now().Add(time.Second)
	for c.Snapshot().InFlight != 1 || !waiting(c) {
		if time.Now().After(deadlineAt) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}

	c.SetUnavailable(true)
	select {
	case err := <-waiterErr:
		if !errors.Is(err, ErrShed) {
			t.Fatalf("parked waiter got %v, want ErrShed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("parked waiter not woken by SetUnavailable")
	}
	// New arrivals shed immediately, even with free slots.
	c.Release(0)
	if err := c.Acquire(0); !errors.Is(err, ErrShed) {
		t.Fatalf("Acquire while unavailable = %v, want ErrShed", err)
	}
	if s := c.Snapshot(); s.Shed != 2 {
		t.Fatalf("shed = %d, want 2", s.Shed)
	}

	// Re-admission after repair.
	c.SetUnavailable(false)
	if err := c.Acquire(0); err != nil {
		t.Fatalf("Acquire after re-admission: %v", err)
	}
	c.Release(0)
}

// waiting reports whether at least one Acquire is parked in the queue.
func waiting(c *Controller) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiters > 0
}

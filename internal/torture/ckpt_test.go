package torture

import (
	"errors"
	"testing"

	"next700/internal/fault"
	"next700/internal/wal"
)

// ckptBase is the shared workload shape for the checkpoint-chaos lanes:
// small enough to sweep, large enough for several checkpoint cycles per
// incarnation.
func ckptBase(protocol string, mode wal.Mode, seed uint64) CkptConfig {
	return CkptConfig{
		Config: Config{
			Protocol:          protocol,
			LogMode:           mode,
			Workers:           3,
			AccountsPerWorker: 8,
			TxnsPerWorker:     48,
			Seed:              seed,
		},
		Streams:         2,
		Keep:            2,
		CheckpointEvery: 6,
	}
}

// TestCkptTortureCrashSweep crashes the checkpoint store at every mutating
// operation index in turn — landing the crash mid-checkpoint-write, between
// segment publication and rotation, between sealing and truncation, inside
// truncation itself — and requires every recovery to be prefix-consistent.
// Each run continues into a second clean incarnation, so the recovered
// engine also has to checkpoint, rotate, and recover again on top of the
// sealed history. InitCheckpointLog consumes Streams+1 ops, so the sweep
// starts just past bootstrap.
func TestCkptTortureCrashSweep(t *testing.T) {
	lanes := []struct {
		name     string
		protocol string
		mode     wal.Mode
	}{
		{"value-silo", "SILO", wal.ModeValue},
		{"command-silo", "SILO", wal.ModeCommand},
		{"value-mvcc", "MVCC", wal.ModeValue},
	}
	maxOp := 40
	if testing.Short() {
		maxOp = 16
	}
	for _, lane := range lanes {
		lane := lane
		t.Run(lane.name, func(t *testing.T) {
			t.Parallel()
			crashed, ckptLoaded, logFallback := 0, 0, 0
			for op := 4; op <= maxOp; op++ {
				cfg := ckptBase(lane.protocol, lane.mode, 0xC0FFEE00+uint64(op))
				cfg.Incarnations = 2
				cfg.Chaos = fault.StoreChaos{Seed: uint64(op) * 977, CrashAtOp: op}
				res, err := RunCkpt(cfg)
				if err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if len(res.Incarnations) != 2 {
					t.Fatalf("op %d: %d incarnations, want 2", op, len(res.Incarnations))
				}
				first := res.Incarnations[0]
				if first.StoreCrashed {
					crashed++
				}
				if first.Recovery.CheckpointLoaded {
					ckptLoaded++
				} else {
					logFallback++
				}
			}
			// The sweep must actually exercise the lifecycle: crashes fire,
			// some recoveries restore a checkpoint, some fall back to the
			// full log because the crash preceded any installed generation.
			if crashed == 0 {
				t.Fatal("no sweep run reached its crash point")
			}
			if ckptLoaded == 0 {
				t.Fatal("no sweep recovery restored a checkpoint")
			}
			if logFallback == 0 {
				t.Fatal("no sweep recovery exercised the full-log fallback")
			}
		})
	}
}

// TestCkptTortureTornManifest tears a manifest save mid-write (save 2 is the
// first cycle's segment publication, save 3 its sealing save) and requires
// recovery to proceed from the previous manifest copy.
func TestCkptTortureTornManifest(t *testing.T) {
	for _, tear := range []int{2, 3} {
		cfg := ckptBase("SILO", wal.ModeValue, 0x7EA5+uint64(tear))
		cfg.Chaos = fault.StoreChaos{Seed: 42, TearManifestAtSave: tear}
		res, err := RunCkpt(cfg)
		if err != nil {
			t.Fatalf("tear at save %d: %v", tear, err)
		}
		ir := res.Incarnations[0]
		if !ir.StoreCrashed {
			t.Fatalf("tear at save %d: store never crashed", tear)
		}
		if !ir.Recovery.ManifestFallback {
			t.Fatalf("tear at save %d: recovery did not use the manifest fallback: %+v", tear, ir.Recovery)
		}
	}
}

// TestCkptTortureTransientCheckpointFailure fails one checkpoint write
// cleanly (no crash): the cycle must report a failure, the run must still
// close and recover perfectly.
func TestCkptTortureTransientCheckpointFailure(t *testing.T) {
	cfg := ckptBase("SILO", wal.ModeValue, 0xFA11)
	cfg.Chaos = fault.StoreChaos{Seed: 7, FailCheckpointAt: 2}
	res, err := RunCkpt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ir := res.Incarnations[0]
	if ir.StoreCrashed {
		t.Fatal("transient failure must not crash the store")
	}
	if ir.CycleFailures < 1 {
		t.Fatalf("no cycle failure recorded: %+v", ir)
	}
	if ir.Cycles < 2 {
		t.Fatalf("cycles did not resume after the transient failure: %+v", ir)
	}
}

// TestCkptTortureCheckpointCorruptionFallback corrupts the newest retained
// checkpoint generation at rest: recovery must fall back to the previous
// generation and replay the longer tail, still prefix-consistent.
func TestCkptTortureCheckpointCorruptionFallback(t *testing.T) {
	for _, mode := range []wal.Mode{wal.ModeValue, wal.ModeCommand} {
		cfg := ckptBase("SILO", mode, 0xBADC+uint64(mode))
		cfg.FlipNewestCheckpoint = true
		res, err := RunCkpt(cfg)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		ir := res.Incarnations[0]
		if ir.Recovery.CheckpointFallbacks < 1 {
			t.Fatalf("mode %v: corrupt newest generation was not skipped: %+v", mode, ir.Recovery)
		}
		if !ir.Recovery.CheckpointLoaded {
			t.Fatalf("mode %v: previous generation did not load: %+v", mode, ir.Recovery)
		}
	}
}

// TestCkptTortureWALBounded runs three clean incarnations with frequent
// checkpoints and requires the footprint to stay bounded: retained
// generations at the keep limit, segment count and bytes bounded, recovery
// replaying a short tail (bounded recovery) rather than the full history.
func TestCkptTortureWALBounded(t *testing.T) {
	cfg := ckptBase("SILO", wal.ModeValue, 0xB0B0)
	cfg.Incarnations = 3
	cfg.CheckpointEvery = 5
	res, err := RunCkpt(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perIncarnation := cfg.Config.Workers * cfg.Config.TxnsPerWorker
	sawSkipped := false
	for i, ir := range res.Incarnations {
		if ir.Checkpoints > cfg.Keep {
			t.Fatalf("incarnation %d: %d generations retained, keep %d", i, ir.Checkpoints, cfg.Keep)
		}
		if max := cfg.Streams * (cfg.Keep + 3); ir.Segments > max {
			t.Fatalf("incarnation %d: %d segments retained, want <= %d", i, ir.Segments, max)
		}
		if !ir.Recovery.CheckpointLoaded {
			t.Fatalf("incarnation %d: recovery did not load a checkpoint: %+v", i, ir.Recovery)
		}
		// Bounded recovery: the replayed tail must be a fraction of the
		// round's commit volume, not the whole history since genesis.
		if ir.Recovery.Records >= perIncarnation*(i+1) {
			t.Fatalf("incarnation %d: replayed %d records, full history is not bounded recovery",
				i, ir.Recovery.Records)
		}
		if ir.Recovery.SkippedOldEpoch > 0 {
			sawSkipped = true
		}
	}
	if !sawSkipped {
		t.Fatal("no recovery skipped checkpoint-covered records; the epoch ceiling is not engaged")
	}
	// Truncation must keep total log bytes from growing across incarnations:
	// the last footprint may not dwarf the first.
	first, last := res.Incarnations[0].SegmentBytes, res.Incarnations[2].SegmentBytes
	if last > 3*first {
		t.Fatalf("segment bytes grew from %d to %d across incarnations; truncation is not bounding the log", first, last)
	}
}

// TestCkptTortureRepeatedCrashes crashes the store in every incarnation —
// including crashes landing inside recovery's own sealing writes in later
// rounds would be a bootstrap failure, so the op index clears attach and
// seal — and requires prefix consistency to survive the full chain.
func TestCkptTortureRepeatedCrashes(t *testing.T) {
	ops := []int{13, 19, 27}
	if testing.Short() {
		ops = ops[:1]
	}
	for _, op := range ops {
		cfg := ckptBase("SILO", wal.ModeValue, 0x5E0+uint64(op))
		cfg.Incarnations = 3
		cfg.RepeatChaos = true
		cfg.Chaos = fault.StoreChaos{Seed: uint64(op), CrashAtOp: op}
		res, err := RunCkpt(cfg)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		for i, ir := range res.Incarnations {
			if !ir.StoreCrashed {
				t.Fatalf("op %d: incarnation %d never crashed", op, i)
			}
		}
	}
}

// TestCkptTortureDetectsLostHistory is the negative control: with every
// retained checkpoint generation corrupted AND early segments already
// truncated, the full history is unrecoverable — the harness must detect
// the violation, proving the checker has teeth against silent state loss.
func TestCkptTortureDetectsLostHistory(t *testing.T) {
	for _, mode := range []wal.Mode{wal.ModeValue, wal.ModeCommand} {
		cfg := ckptBase("SILO", mode, 0xDEAD+uint64(mode))
		cfg.Keep = 1
		cfg.CheckpointEvery = 4
		cfg.FlipAllCheckpoints = true
		_, err := RunCkpt(cfg)
		if err == nil {
			t.Fatalf("mode %v: lost history went undetected", mode)
		}
		if !errors.Is(err, ErrState) && !errors.Is(err, ErrDurability) && !errors.Is(err, ErrConsistency) {
			t.Fatalf("mode %v: expected an invariant violation, got: %v", mode, err)
		}
	}
}

package torture

import (
	"testing"

	"next700/internal/testutil"
)

// TestPartitionFaultSeeds is the partition-fault oracle sweep: across many
// seeds, exactly one partition's device sticky-fails mid-run; healthy
// partitions must commit durably with zero losses, every loss on the failed
// partition must classify ErrPartitionUnavailable, the degraded engine must
// show zero Adya anomalies, and live single-partition recovery must land
// exactly on the acknowledged prefix digest.
func TestPartitionFaultSeeds(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	const iters = 24
	fired := 0
	for seed := uint64(1); seed <= iters; seed++ {
		res, err := RunPartition(PartitionConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Fired {
			fired++
			if res.Lost == 0 {
				t.Fatalf("seed %d: fault fired but nothing was shed", seed)
			}
			if res.ProbeTxns == 0 {
				t.Fatalf("seed %d: degraded-engine probe committed nothing", seed)
			}
		}
	}
	// The crash offsets are drawn to land mid-run; a majority of the seeds
	// must actually exercise the fault path.
	if fired < iters/2 {
		t.Fatalf("only %d/%d seeds fired the fault", fired, iters)
	}
	t.Logf("fired %d/%d", fired, iters)
}

// TestPartitionFaultNoFaultControl is the negative control: without a fault
// every partition completes every transaction.
func TestPartitionFaultNoFaultControl(t *testing.T) {
	res, err := RunPartition(PartitionConfig{Seed: 99, NoFault: true})
	if err != nil {
		t.Fatal(err)
	}
	for p, a := range res.Acked {
		if a != 60 {
			t.Fatalf("partition %d acked %d/60", p, a)
		}
	}
}

// TestPartitionStoreSeeds sweeps the store lane: sliced checkpoint
// generations, full-process crash, per-partition slice + own-tail recovery.
func TestPartitionStoreSeeds(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := RunPartitionStore(PartitionStoreConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Recovery.CheckpointFallbacks != 0 {
			t.Fatalf("seed %d: clean recovery reported %d fallbacks", seed, res.Recovery.CheckpointFallbacks)
		}
		if !res.Recovery.CheckpointLoaded {
			t.Fatalf("seed %d: sliced checkpoint not loaded", seed)
		}
	}
}

// TestPartitionStoreCorruptSlice is the corrupt-slice negative control: a
// flipped byte in one partition's slice must never load silently — recovery
// reports a fallback and still reaches the exact committed state.
func TestPartitionStoreCorruptSlice(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	for seed := uint64(1); seed <= 6; seed++ {
		res, err := RunPartitionStore(PartitionStoreConfig{Seed: seed, CorruptSlice: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Recovery.CheckpointFallbacks == 0 {
			t.Fatalf("seed %d: corrupt slice produced no fallback", seed)
		}
	}
}

// Partition-fault torture: the quarantine/degradation/recovery arc under a
// seeded device failure, checked against exact oracles.
//
// The workload is partition-local by construction — partition p owns
// accounts {i*P + p} and counter counterPartBase + p, and every transfer
// stays inside its partition — so each partition's recovered state is a
// pure function of its own committed prefix, which makes the digest oracle
// exact: after quarantining partition t and recovering it live from its own
// stream tail, the recovered counter MUST equal the acknowledged commit
// count (an acknowledged commit's epoch is covered by the stream's claim; an
// unacknowledged one is beyond the frontier and must be truncated — there is
// no slack in either direction), and every account must equal the replay of
// exactly that plan prefix.
//
// While partition t is dark, the other partitions must not degrade at all:
// their workers finish every transaction, every loss on t classifies as
// core.ErrPartitionUnavailable (anything else is a verdict failure), and a
// stamped Adya isolation probe pinned to partition 0 runs on the degraded
// engine and must report zero anomalies.
package torture

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"next700/internal/core"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/verify"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// Typed partition-lane violations, wrapped with the seed for replay.
var (
	// ErrPartitionClass reports a loss on the failed partition that did not
	// classify as core.ErrPartitionUnavailable.
	ErrPartitionClass = errors.New("torture: partition loss with wrong error class")
	// ErrPartitionBleed reports degradation outside the failed partition.
	ErrPartitionBleed = errors.New("torture: healthy partition degraded")
	// ErrPartitionDigest reports a recovered partition whose state is not
	// exactly the replay of its acknowledged commit prefix.
	ErrPartitionDigest = errors.New("torture: recovered partition digest mismatch")
)

// PartitionConfig scripts one partition-fault iteration.
type PartitionConfig struct {
	// Protocol is the concurrency-control scheme (default SILO).
	Protocol string
	// Partitions is the partition (= worker = stream) count, default 4.
	Partitions int
	// AccountsPerPartition sizes each partition's account set (default 8).
	AccountsPerPartition int
	// TxnsPerPartition is each partition worker's commit target (default 60).
	TxnsPerPartition int
	// Seed drives the failed-partition draw, the crash offset, and every
	// worker's transfer plan.
	Seed uint64
	// NoFault disables the device failure: a control iteration that must
	// complete with zero losses anywhere.
	NoFault bool
}

func (c PartitionConfig) normalized() PartitionConfig {
	if c.Protocol == "" {
		c.Protocol = "SILO"
	}
	if c.Partitions <= 1 {
		c.Partitions = 4
	}
	if c.AccountsPerPartition <= 0 {
		c.AccountsPerPartition = 8
	}
	if c.TxnsPerPartition <= 0 {
		c.TxnsPerPartition = 60
	}
	return c
}

// PartitionResult summarizes one iteration.
type PartitionResult struct {
	Seed   uint64
	Target int  // the partition whose device fails (-1 when NoFault)
	Fired  bool // the planned crash point was reached during the run
	// Acked is the per-partition acknowledged commit count.
	Acked []int
	// Lost counts the failed partition's attempts that terminated with
	// ErrPartitionUnavailable (the degradation shed).
	Lost int
	// ProbeTxns is the committed stamped-probe transaction count on the
	// degraded engine.
	ProbeTxns int
	// Recovery is the live single-partition recovery's stats.
	Recovery core.RecoveryStats
}

// counterPartBase keeps the per-partition commit counters far above any
// account key. The partitioner maps counterPartBase+p to partition p
// explicitly, so the layout works for any partition count.
const counterPartBase = 1 << 20

// partitionPlans builds every partition's deterministic transfer plan.
// Partition p's transfers stay inside its own account set.
func partitionPlans(cfg PartitionConfig) [][]transfer {
	plans := make([][]transfer, cfg.Partitions)
	for p := range plans {
		wrng := xrand.New(cfg.Seed ^ (0xb5297a4d3f84d5b5 * uint64(p+1)))
		plan := make([]transfer, cfg.TxnsPerPartition)
		for i := range plan {
			from := uint64(wrng.Intn(cfg.AccountsPerPartition)*cfg.Partitions + p)
			to := from
			for to == from {
				to = uint64(wrng.Intn(cfg.AccountsPerPartition)*cfg.Partitions + p)
			}
			plan[i] = transfer{from: from, to: to, delta: int64(wrng.IntRange(1, 100))}
		}
		plans[p] = plan
	}
	return plans
}

// buildPartitionEngine opens a partition-affinity engine over devs, installs
// the table-aware partitioner (counters map explicitly; the isolation
// probe's table pins to partition 0 so it can run while another partition is
// dark), and creates the account table.
func buildPartitionEngine(cfg PartitionConfig, devs []wal.Device) (*core.Engine, *core.Table, error) {
	P := cfg.Partitions
	e, err := core.Open(core.Config{
		Protocol:          cfg.Protocol,
		Threads:           P,
		Partitions:        P,
		LogMode:           wal.ModeValue,
		WALStreams:        P,
		LogDevices:        devs,
		PartitionWAL:      true,
		GroupCommitWindow: 200 * time.Microsecond,
		EpochInterval:     time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	e.SetPartitioner(func(tbl *core.Table, key uint64) int {
		if tbl.Name() == "verify_probe" {
			return 0
		}
		if key >= counterPartBase {
			return int(key-counterPartBase) % P
		}
		return int(key % uint64(P))
	})
	sch := storage.MustSchema("acct", storage.I64("v"))
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, tbl, nil
}

// loadPartition zero-loads partition p's accounts and counter. It is both
// the initial load (called for every p) and RecoverPartition's base-state
// callback (called for the cleared partition alone).
func loadPartition(cfg PartitionConfig, e *core.Engine, tbl *core.Table, p int) error {
	sch := tbl.Schema()
	row := sch.NewRow()
	load := func(key uint64) error {
		sch.SetInt64(row, 0, 0)
		return e.Load(tbl, key, row)
	}
	for i := 0; i < cfg.AccountsPerPartition; i++ {
		if err := load(uint64(i*cfg.Partitions + p)); err != nil {
			return err
		}
	}
	return load(counterPartBase + uint64(p))
}

// RunPartition executes one partition-fault iteration: fail exactly one
// partition's log device mid-run, verify graceful degradation on the live
// engine, then recover the partition in place and verify the digest oracle.
func RunPartition(cfg PartitionConfig) (PartitionResult, error) {
	cfg = cfg.normalized()
	P := cfg.Partitions
	res := PartitionResult{Seed: cfg.Seed, Target: -1, Acked: make([]int, P)}
	rng := xrand.New(cfg.Seed)

	target := -1
	if !cfg.NoFault {
		target = 1 + int(rng.Uint64n(uint64(P-1)))
	}
	res.Target = target

	// Devices: the target's is wrapped in a chaos device with a crash
	// offset drawn to land mid-run (value records here carry 2 entries,
	// ~110 framed bytes each).
	perStream := cfg.TxnsPerPartition * 110
	mems := make([]*fault.MemDevice, P)
	devs := make([]wal.Device, P)
	for i := range mems {
		mems[i] = &fault.MemDevice{}
		devs[i] = mems[i]
	}
	if target >= 0 {
		devs[target] = fault.NewDevice(mems[target], fault.Plan{
			Seed:        cfg.Seed,
			CrashAtByte: 1 + int64(rng.Uint64n(uint64(perStream)*3/4)),
		})
	}

	e, tbl, err := buildPartitionEngine(cfg, devs)
	if err != nil {
		return res, err
	}
	defer e.Close()
	for p := 0; p < P; p++ {
		if err := loadPartition(cfg, e, tbl, p); err != nil {
			return res, err
		}
	}

	plans := partitionPlans(cfg)
	sch := tbl.Schema()
	lost := make([]int, P)
	hard := make([]error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			tx := e.NewTx(p, cfg.Seed^uint64(p)+1)
			for _, tr := range plans[p] {
				err := tx.Run(func(tx *core.Tx) error {
					bump := func(key uint64, d int64) error {
						r, err := tx.Update(tbl, key)
						if err != nil {
							return err
						}
						sch.SetInt64(r, 0, sch.GetInt64(r, 0)+d)
						return nil
					}
					if err := bump(counterPartBase+uint64(p), 1); err != nil {
						return err
					}
					if err := bump(tr.from, -tr.delta); err != nil {
						return err
					}
					return bump(tr.to, tr.delta)
				})
				if err == nil {
					res.Acked[p]++
					continue
				}
				// Losses are legitimate only on the failed partition and
				// only with the partition class; the worker keeps
				// attempting — degradation must be shed, not wedged.
				if p != target || !errors.Is(err, core.ErrPartitionUnavailable) {
					hard[p] = err
					return
				}
				lost[p]++
			}
		}(p)
	}
	wg.Wait()

	for p, err := range hard {
		if err != nil {
			if p == target {
				return res, fmt.Errorf("%w: partition %d: %v (seed %d)", ErrPartitionClass, p, err, cfg.Seed)
			}
			return res, fmt.Errorf("%w: partition %d: %v (seed %d)", ErrPartitionBleed, p, err, cfg.Seed)
		}
	}
	res.Lost = lost2sum(lost)
	res.Fired = res.Lost > 0
	for p := 0; p < P; p++ {
		if p != target && res.Acked[p] != cfg.TxnsPerPartition {
			return res, fmt.Errorf("%w: partition %d acked %d/%d (seed %d)",
				ErrPartitionBleed, p, res.Acked[p], cfg.TxnsPerPartition, cfg.Seed)
		}
	}

	if !res.Fired {
		// The crash offset overshot the run (or NoFault): a clean control
		// iteration. Verify full digests and stop.
		if target >= 0 && res.Acked[target] != cfg.TxnsPerPartition {
			return res, fmt.Errorf("%w: partition %d acked %d/%d with no observed fault (seed %d)",
				ErrPartitionBleed, target, res.Acked[target], cfg.TxnsPerPartition, cfg.Seed)
		}
		return res, verifyPartitionDigests(cfg, e, tbl, plans, res.Acked, -1)
	}

	// The guard learns of the failure asynchronously via the stream-set's
	// failure channel; the first worker loss can surface slightly earlier.
	deadline := time.Now().Add(5 * time.Second)
	for e.QuarantinedPartitions() != 1<<uint(target) {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("torture: quarantine mask %#x never converged on partition %d (seed %d)",
				e.QuarantinedPartitions(), target, cfg.Seed)
		}
		time.Sleep(time.Millisecond)
	}

	// Healthy-partition digests hold while the failed partition is dark.
	if err := verifyPartitionDigests(cfg, e, tbl, plans, res.Acked, target); err != nil {
		return res, err
	}

	// Stamped isolation probe on the degraded engine, pinned to partition
	// 0: quarantine must not cost the survivors their isolation.
	n, err := probePartition0(cfg, e)
	res.ProbeTxns = n
	if err != nil {
		return res, err
	}

	// Live recovery: the failed partition's synced prefix is guaranteed;
	// its unsynced written tail survives up to a seeded cut (the claim cap
	// truncates whatever un-certified bytes survive).
	data := mems[target].Bytes()
	cut := mems[target].SyncedLen()
	if len(data) > cut {
		cut += int(rng.Uint64n(uint64(len(data)-cut) + 1))
	}
	rs, err := e.RecoverPartition(target,
		func() error { return loadPartition(cfg, e, tbl, target) },
		nil, bytes.NewReader(data[:cut]), &fault.MemDevice{})
	if err != nil {
		return res, fmt.Errorf("torture: partition recovery failed (seed %d): %w", cfg.Seed, err)
	}
	res.Recovery = rs

	// Digest oracle at the recovered frontier: an acknowledged commit's
	// epoch is covered by the stream claim, an unacknowledged one is beyond
	// the frontier — the recovered counter must equal the acked count
	// exactly, and the accounts must replay to that prefix.
	if err := verifyPartitionDigests(cfg, e, tbl, plans, res.Acked, -1); err != nil {
		return res, err
	}

	// The partition is back in service: it must accept new durable commits.
	tx := e.NewTx(0, cfg.Seed+0x5eed)
	if err := tx.Run(func(tx *core.Tx) error {
		r, err := tx.Update(tbl, counterPartBase+uint64(target))
		if err != nil {
			return err
		}
		sch.SetInt64(r, 0, sch.GetInt64(r, 0)+1)
		return nil
	}); err != nil {
		return res, fmt.Errorf("torture: readmitted partition %d rejected a commit (seed %d): %w",
			target, cfg.Seed, err)
	}
	return res, nil
}

func lost2sum(lost []int) int {
	n := 0
	for _, l := range lost {
		n += l
	}
	return n
}

// verifyPartitionDigests checks every partition except skip against its
// exact oracle: counter == acked commits, every account == the replay of
// exactly that plan prefix.
func verifyPartitionDigests(cfg PartitionConfig, e *core.Engine, tbl *core.Table, plans [][]transfer, acked []int, skip int) error {
	sch := tbl.Schema()
	tx := e.NewTx(0, cfg.Seed+0xd16e57)
	read := func(key uint64) (int64, error) {
		var v int64
		err := tx.Run(func(tx *core.Tx) error {
			r, err := tx.Read(tbl, key)
			if err != nil {
				return err
			}
			v = sch.GetInt64(r, 0)
			return nil
		})
		return v, err
	}
	for p := 0; p < cfg.Partitions; p++ {
		if p == skip {
			continue
		}
		got, err := read(counterPartBase + uint64(p))
		if err != nil {
			return fmt.Errorf("torture: partition %d counter read (seed %d): %w", p, cfg.Seed, err)
		}
		if got != int64(acked[p]) {
			return fmt.Errorf("%w: partition %d counter %d, acked %d (seed %d)",
				ErrPartitionDigest, p, got, acked[p], cfg.Seed)
		}
		expected := make(map[uint64]int64, cfg.AccountsPerPartition)
		for i := 0; i < acked[p]; i++ {
			tr := plans[p][i]
			expected[tr.from] -= tr.delta
			expected[tr.to] += tr.delta
		}
		for i := 0; i < cfg.AccountsPerPartition; i++ {
			key := uint64(i*cfg.Partitions + p)
			v, err := read(key)
			if err != nil {
				return fmt.Errorf("torture: partition %d account read (seed %d): %w", p, cfg.Seed, err)
			}
			if v != expected[key] {
				return fmt.Errorf("%w: partition %d account %d = %d, prefix replay gives %d (seed %d)",
					ErrPartitionDigest, p, key, v, expected[key], cfg.Seed)
			}
		}
	}
	return nil
}

// probePartition0Txns is each probe worker's transaction count on the
// degraded engine — small, because the probe runs inside every iteration.
const probePartition0Txns = 30

// probePartition0 runs the stamped Adya isolation probe on the degraded
// engine. The probe table is pinned to partition 0 by the partitioner, so
// its transactions never touch the quarantined partition.
func probePartition0(cfg PartitionConfig, e *core.Engine) (int, error) {
	probe := verify.NewProbe(verify.ProbeConfig{Keys: 8, MinOps: 2, MaxOps: 4})
	hist := verify.NewHistory(cfg.Partitions)
	probe.AttachHistory(hist)
	if err := probe.Setup(e); err != nil {
		return 0, err
	}
	errs := make([]error, cfg.Partitions)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Partitions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := e.NewTx(w, cfg.Seed^uint64(w)*0x9e3779b9+7)
			for i := 0; i < probePartition0Txns; i++ {
				if err := probe.RunOne(tx); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("torture: degraded-engine probe worker %d (seed %d): %w", w, cfg.Seed, err)
		}
	}
	final, err := probe.FinalVersions(e)
	if err != nil {
		return 0, err
	}
	rep := hist.Check(final)
	if !rep.Ok() {
		return rep.Txns, fmt.Errorf("%w: %s (seed %d)", ErrIsolation, rep.Anomalies[0], cfg.Seed)
	}
	return rep.Txns, nil
}

// PartitionStoreConfig scripts one store-backed partition-recovery
// iteration: sliced checkpoints, a full-process crash, partitioned store
// recovery — optionally with one slice corrupted as a negative control.
type PartitionStoreConfig struct {
	// Protocol, Partitions, AccountsPerPartition, TxnsPerPartition, Seed:
	// as PartitionConfig.
	Protocol             string
	Partitions           int
	AccountsPerPartition int
	TxnsPerPartition     int
	Seed                 uint64
	// CorruptSlice flips one byte in one partition's newest checkpoint
	// slice before recovery. The corrupt slice must NEVER load silently:
	// recovery must report a checkpoint fallback and still land on the
	// exact committed state.
	CorruptSlice bool
}

// PartitionStoreResult summarizes one store-lane iteration.
type PartitionStoreResult struct {
	Seed     uint64
	Slices   int // slice objects the checkpoint generation produced
	Recovery core.RecoveryStats
}

// RunPartitionStore executes one store-lane iteration: run half the
// workload, take a partition-sliced checkpoint, run the rest, crash, and
// recover a fresh engine from the store — each partition from its own
// newest valid slice plus its own stream tail.
func RunPartitionStore(cfg PartitionStoreConfig) (PartitionStoreResult, error) {
	pcfg := PartitionConfig{
		Protocol:             cfg.Protocol,
		Partitions:           cfg.Partitions,
		AccountsPerPartition: cfg.AccountsPerPartition,
		TxnsPerPartition:     cfg.TxnsPerPartition,
		Seed:                 cfg.Seed,
	}.normalized()
	P := pcfg.Partitions
	res := PartitionStoreResult{Seed: cfg.Seed}
	rng := xrand.New(cfg.Seed ^ 0x510e5)

	store := fault.NewMemStore(fault.StoreChaos{Seed: cfg.Seed})
	att, err := core.InitCheckpointLog(store, P, wal.ModeValue)
	if err != nil {
		return res, err
	}
	e, tbl, err := buildPartitionEngine(pcfg, att.Devices)
	if err != nil {
		return res, err
	}
	defer e.Close()
	for p := 0; p < P; p++ {
		if err := loadPartition(pcfg, e, tbl, p); err != nil {
			return res, err
		}
	}

	plans := partitionPlans(pcfg)
	sch := tbl.Schema()
	run := func(p, lo, hi int) error {
		tx := e.NewTx(p, cfg.Seed^uint64(p)+uint64(lo)+1)
		for _, tr := range plans[p][lo:hi] {
			err := tx.Run(func(tx *core.Tx) error {
				bump := func(key uint64, d int64) error {
					r, err := tx.Update(tbl, key)
					if err != nil {
						return err
					}
					sch.SetInt64(r, 0, sch.GetInt64(r, 0)+d)
					return nil
				}
				if err := bump(counterPartBase+uint64(p), 1); err != nil {
					return err
				}
				if err := bump(tr.from, -tr.delta); err != nil {
					return err
				}
				return bump(tr.to, tr.delta)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	phase := func(lo, hi int) error {
		errs := make([]error, P)
		var wg sync.WaitGroup
		for p := 0; p < P; p++ {
			wg.Add(1)
			go func(p int) { defer wg.Done(); errs[p] = run(p, lo, hi) }(p)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	half := pcfg.TxnsPerPartition / 2
	if err := phase(0, half); err != nil {
		return res, err
	}
	ck, err := e.NewCheckpointer(store, 2, att.Devices)
	if err != nil {
		return res, err
	}
	if err := ck.CheckpointNow(); err != nil {
		return res, err
	}
	m := ck.Manifest()
	if len(m.Checkpoints) == 0 || m.Checkpoints[len(m.Checkpoints)-1].Slices != P {
		return res, fmt.Errorf("torture: checkpoint generation not sliced: %+v (seed %d)", m.Checkpoints, cfg.Seed)
	}
	res.Slices = P
	if err := phase(half, pcfg.TxnsPerPartition); err != nil {
		return res, err
	}
	if err := e.Close(); err != nil {
		return res, err
	}

	survivor := store.Survivor(fault.StoreChaos{Seed: cfg.Seed + 1})
	if cfg.CorruptSlice {
		ckName := m.Checkpoints[len(m.Checkpoints)-1].Name
		part := int(rng.Uint64n(uint64(P)))
		if !survivor.FlipCheckpointByte(core.CheckpointSliceName(ckName, part), 16+int(rng.Uint64n(64))) {
			return res, fmt.Errorf("torture: no slice object to corrupt (seed %d)", cfg.Seed)
		}
	}

	att2, err := core.AttachCheckpointLog(survivor)
	if err != nil {
		return res, err
	}
	e2, tbl2, err := buildPartitionEngine(pcfg, att2.Devices)
	if err != nil {
		return res, err
	}
	defer e2.Close()
	rs, err := e2.RecoverFromStore(survivor, att2, func() error {
		for p := 0; p < P; p++ {
			if err := loadPartition(pcfg, e2, tbl2, p); err != nil {
				return err
			}
		}
		return nil
	})
	res.Recovery = rs
	if err != nil {
		return res, fmt.Errorf("torture: store recovery failed (seed %d): %w", cfg.Seed, err)
	}
	if cfg.CorruptSlice && rs.CheckpointFallbacks == 0 {
		return res, fmt.Errorf("torture: corrupt slice loaded silently (seed %d)", cfg.Seed)
	}

	// Clean close: everything was acknowledged, so the digest oracle is the
	// full plan for every partition.
	acked := make([]int, P)
	for p := range acked {
		acked[p] = pcfg.TxnsPerPartition
	}
	return res, verifyPartitionDigests(pcfg, e2, tbl2, plans, acked, -1)
}

// Package torture is the seeded crash-recovery torture harness: it runs a
// transfer workload against an engine whose log device is wrapped in a
// fault.Device, "crashes" at a planned byte offset, replays the surviving
// log prefix into a fresh engine, and checks the three recovery invariants:
//
//   - Durability: every commit the engine acknowledged (WaitDurable
//     returned nil inside Tx.Run) survives recovery.
//   - Atomicity: no partial write set is visible — each worker's account
//     partition sums to zero because every transfer is balanced.
//   - Prefix consistency: the recovered state corresponds to a prefix of
//     each worker's commit sequence — never more commits than the worker
//     performed, and at most one unacknowledged in-flight commit.
//
// Every run is a pure function of its Config (including the seed), so a
// failing seed replays identically. The workload partitions accounts per
// worker so the log-order-versus-commit-order question stays per-worker
// (each worker appends its records in its own commit order); an optional
// shared hot row generates cross-worker conflicts to exercise the retry
// path without participating in any checked invariant.
package torture

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"next700/internal/core"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/verify"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// Typed invariant violations. Run wraps them with seed and detail so a
// failure message is enough to replay the case.
var (
	ErrDurability  = errors.New("torture: durability violation (acked commit lost)")
	ErrAtomicity   = errors.New("torture: atomicity violation (partial write set visible)")
	ErrConsistency = errors.New("torture: consistency violation (recovered state beyond commit prefix)")
	// ErrState is the prefix-explainability violation: the recovered state
	// is not byte-for-byte the result of replaying each worker's committed
	// prefix of its deterministic transfer plan.
	ErrState = errors.New("torture: state violation (recovered state not explainable by the committed prefix)")
	// ErrIsolation reports that the stamped isolation probe found an
	// anomaly on the recovered engine.
	ErrIsolation = errors.New("torture: isolation violation on recovered engine")
)

// Config scripts one torture iteration.
type Config struct {
	// Protocol is the concurrency-control scheme (SILO, NO_WAIT, MVCC, ...).
	Protocol string
	// LogMode must be wal.ModeValue or wal.ModeCommand.
	LogMode wal.Mode
	// Workers is the number of concurrent workers (default 3).
	Workers int
	// WALStreams, when > 1, runs the engine on a parallel WAL with that
	// many streams, each wrapped in its own chaos device with an
	// independently seeded crash offset — so one stream can tear mid-epoch
	// while another completes it, the torn-epoch case the recovery merge
	// must truncate rather than resurrect.
	WALStreams int
	// AccountsPerWorker sizes each worker's private account partition
	// (default 8).
	AccountsPerWorker int
	// TxnsPerWorker is each worker's target commit count (default 40).
	TxnsPerWorker int
	// Seed drives everything: the crash offset, the unsynced-tail cut, each
	// worker's account picks, and injected sync faults.
	Seed uint64
	// NoCrash disables the planned crash (the run closes cleanly and the
	// whole log survives). Used by negative controls.
	NoCrash bool
	// TransientSyncEvery injects a retryable sync failure every Nth sync,
	// exercising the writer's bounded retry during the run.
	TransientSyncEvery int
	// HotProb is the probability a transaction also increments the shared
	// hot row (cross-worker conflicts). Default 0.25; negative disables.
	HotProb float64
	// SkipTailRecords, when > 0, drops that many intact records from the
	// end of the surviving prefix before replay — a negative control that
	// must trip ErrDurability when all commits were acknowledged.
	SkipTailRecords int
	// VerifyRecovered, when set, additionally runs the stamped isolation
	// probe (internal/verify) against the recovered engine and fails with
	// ErrIsolation on any reported anomaly — recovery must hand back an
	// engine that still isolates. Requires value logging: the probe's
	// ad-hoc transactions cannot be command-logged.
	VerifyRecovered bool
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.WALStreams <= 0 {
		c.WALStreams = 1
	}
	if c.WALStreams > c.Workers {
		c.WALStreams = c.Workers
	}
	if c.AccountsPerWorker <= 0 {
		c.AccountsPerWorker = 8
	}
	if c.TxnsPerWorker <= 0 {
		c.TxnsPerWorker = 40
	}
	if c.HotProb == 0 {
		c.HotProb = 0.25
	}
	return c
}

// Result summarizes one iteration.
type Result struct {
	Seed          uint64
	Crashed       bool // the planned crash point was reached
	Acked         int  // commits acknowledged durable across all workers
	SurvivorBytes int  // log bytes handed to recovery
	SyncedBytes   int  // guaranteed-durable prefix at crash time
	Recovery      core.RecoveryStats
	// ProbeTxns is the number of committed stamped-probe transactions
	// checked on the recovered engine (0 unless Config.VerifyRecovered).
	ProbeTxns int
}

// transfer is one planned balanced transfer.
type transfer struct {
	from, to uint64
	delta    int64
	hot      bool
}

// planWorker reproduces worker w's deterministic schedule: its transaction
// seed and the full transfer sequence. The run executes this plan in order,
// and the post-recovery state check replays a committed prefix of the very
// same plan — which is what makes "explainable by some committed prefix" a
// checkable property. The draw order matches the pre-refactor worker loop
// exactly, so existing seeds keep their crash/torn coverage.
func planWorker(cfg Config, w int) (seed uint64, plan []transfer) {
	wrng := xrand.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1)))
	seed = wrng.Uint64()
	lo := w * cfg.AccountsPerWorker
	plan = make([]transfer, cfg.TxnsPerWorker)
	for i := range plan {
		from := uint64(lo + wrng.Intn(cfg.AccountsPerWorker))
		to := uint64(lo + wrng.Intn(cfg.AccountsPerWorker))
		for to == from {
			to = uint64(lo + wrng.Intn(cfg.AccountsPerWorker))
		}
		delta := int64(wrng.IntRange(1, 100))
		hot := cfg.HotProb > 0 && wrng.Bool(cfg.HotProb)
		plan[i] = transfer{from: from, to: to, delta: delta, hot: hot}
	}
	return seed, plan
}

// Key layout: worker w owns accounts [w*APW, (w+1)*APW); counter and hot
// rows live far above any account key.
const (
	counterBase = 1 << 20
	hotKey      = 1 << 21
)

const procTransfer = 1

// params layout: worker u32 | from u64 | to u64 | delta u64 | hot u8.
func encodeParams(worker uint32, from, to uint64, delta int64, hot bool) []byte {
	p := make([]byte, 29)
	binary.LittleEndian.PutUint32(p[0:], worker)
	binary.LittleEndian.PutUint64(p[4:], from)
	binary.LittleEndian.PutUint64(p[12:], to)
	binary.LittleEndian.PutUint64(p[20:], uint64(delta))
	if hot {
		p[28] = 1
	}
	return p
}

// buildEngine opens an engine on the given per-stream devices (one device =
// the classic single-stream writer), creates the account table, and
// registers the transfer procedure. With preload set it also performs the
// deterministic initial load (loadInitial); checkpoint-based recovery opens
// the engine empty instead and hands loadInitial to RecoverFromStore as the
// no-usable-checkpoint fallback.
func buildEngine(cfg Config, devs []wal.Device, preload bool) (*core.Engine, *core.Table, error) {
	ecfg := core.Config{
		Protocol: cfg.Protocol,
		Threads:  cfg.Workers,
		LogMode:  cfg.LogMode,
	}
	if len(devs) > 1 {
		ecfg.WALStreams = len(devs)
		ecfg.LogDevices = devs
	} else {
		ecfg.LogDevice = devs[0]
	}
	e, err := core.Open(ecfg)
	if err != nil {
		return nil, nil, err
	}
	sch := storage.MustSchema("acct", storage.I64("v"))
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	if preload {
		if err := loadInitial(cfg, e, tbl); err != nil {
			e.Close()
			return nil, nil, err
		}
	}
	err = e.RegisterProc(procTransfer, func(tx *core.Tx, p []byte) error {
		worker := binary.LittleEndian.Uint32(p[0:])
		from := binary.LittleEndian.Uint64(p[4:])
		to := binary.LittleEndian.Uint64(p[12:])
		delta := int64(binary.LittleEndian.Uint64(p[20:]))
		hot := p[28] != 0
		bump := func(key uint64, d int64) error {
			r, err := tx.Update(tbl, key)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, sch.GetInt64(r, 0)+d)
			return nil
		}
		if err := bump(counterBase+uint64(worker), 1); err != nil {
			return err
		}
		if err := bump(from, -delta); err != nil {
			return err
		}
		if err := bump(to, delta); err != nil {
			return err
		}
		if hot {
			return bump(hotKey, 1)
		}
		return nil
	})
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, tbl, nil
}

// loadInitial performs the deterministic initial load: every account,
// per-worker counter, and the hot row, all zero. Load bypasses the log, so
// a fresh engine plus this load is exactly the state the log replays over.
func loadInitial(cfg Config, e *core.Engine, tbl *core.Table) error {
	sch := tbl.Schema()
	row := sch.NewRow()
	load := func(key uint64) error {
		sch.SetInt64(row, 0, 0)
		return e.Load(tbl, key, row)
	}
	for w := 0; w < cfg.Workers; w++ {
		for i := 0; i < cfg.AccountsPerWorker; i++ {
			if err := load(uint64(w*cfg.AccountsPerWorker + i)); err != nil {
				return err
			}
		}
		if err := load(counterBase + uint64(w)); err != nil {
			return err
		}
	}
	return load(hotKey)
}

// estimatedRecordBytes approximates the framed size of one commit record so
// the seeded crash offset lands inside the log most runs (runs whose offset
// overshoots simply close cleanly — the no-crash path needs coverage too).
func estimatedRecordBytes(mode wal.Mode) int {
	if mode == wal.ModeCommand {
		return 62 // header + txnid + epoch + proc + params(29)
	}
	return 148 // header + txnid + epoch + ~3.25 entries of 33 bytes
}

// Run executes one torture iteration and verifies the invariants against
// the recovered engine. A nil error means every invariant held.
func Run(cfg Config) (Result, error) {
	cfg = cfg.normalized()
	res := Result{Seed: cfg.Seed}
	rng := xrand.New(cfg.Seed)

	// One chaos device per stream, each with an independently drawn crash
	// offset scaled to its share of the record volume — so streams tear at
	// unrelated points and epochs end up partially durable across the set.
	// With WALStreams == 1 the draws reduce exactly to the historical
	// single-device sequence, keeping existing seeds' coverage.
	streams := cfg.WALStreams
	perStream := cfg.Workers * cfg.TxnsPerWorker * estimatedRecordBytes(cfg.LogMode) / streams
	mems := make([]*fault.MemDevice, streams)
	fdevs := make([]*fault.Device, streams)
	devs := make([]wal.Device, streams)
	for i := range mems {
		plan := fault.Plan{Seed: cfg.Seed + uint64(i), TransientSyncEvery: cfg.TransientSyncEvery}
		if !cfg.NoCrash {
			plan.CrashAtByte = 1 + int64(rng.Uint64n(uint64(perStream)*5/4))
		}
		mems[i] = &fault.MemDevice{}
		fdevs[i] = fault.NewDevice(mems[i], plan)
		devs[i] = fdevs[i]
	}

	e, _, err := buildEngine(cfg, devs, true)
	if err != nil {
		return res, err
	}

	acked := make([]int, cfg.Workers)
	stopped := make([]bool, cfg.Workers) // worker quit on an error (one in-flight commit possible)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seed, plan := planWorker(cfg, w)
			tx := e.NewTx(w, seed)
			for _, tr := range plan {
				if err := tx.RunProc(procTransfer, encodeParams(uint32(w), tr.from, tr.to, tr.delta, tr.hot)); err != nil {
					// The engine retries transient aborts internally; an
					// error here is terminal for this worker (log death).
					stopped[w] = true
					return
				}
				acked[w]++
			}
		}(w)
	}
	wg.Wait()
	for _, fd := range fdevs {
		if fd.Crashed() {
			res.Crashed = true
		}
	}
	e.Close() // a failed close just reports the already-observed log death

	// The survivors: each stream's synced prefix is guaranteed; its unsynced
	// written tail survives up to an independently seeded cut (modeling
	// arbitrary loss of buffered-but-unsynced bytes per device, including a
	// torn final record). Under multi-stream runs this is exactly the
	// torn-epoch shape: one stream keeps its tail, another loses it.
	survivors := make([][]byte, streams)
	for i, mem := range mems {
		data := mem.Bytes()
		synced := mem.SyncedLen()
		res.SyncedBytes += synced
		cut := synced
		if len(data) > synced {
			cut += int(rng.Uint64n(uint64(len(data)-synced) + 1))
		}
		survivors[i] = data[:cut]
	}
	if cfg.SkipTailRecords > 0 {
		survivors[0] = dropTailRecords(survivors[0], cfg.SkipTailRecords)
	}
	for _, s := range survivors {
		res.SurvivorBytes += len(s)
	}
	for _, a := range acked {
		res.Acked += a
	}

	// Replay into a fresh engine built from the same deterministic load.
	rdevs := make([]wal.Device, streams)
	for i := range rdevs {
		rdevs[i] = &fault.MemDevice{}
	}
	e2, tbl2, err := buildEngine(cfg, rdevs, true)
	if err != nil {
		return res, err
	}
	defer e2.Close()
	var rs core.RecoveryStats
	if streams > 1 {
		readers := make([]io.Reader, streams)
		for i := range survivors {
			readers[i] = bytes.NewReader(survivors[i])
		}
		rs, err = e2.RecoverStreams(readers)
	} else {
		rs, err = e2.Recover(bytes.NewReader(survivors[0]))
	}
	res.Recovery = rs
	if err != nil {
		return res, fmt.Errorf("torture: recovery failed (seed %d): %w", cfg.Seed, err)
	}

	// Read the recovered state and check the invariants.
	sch := tbl2.Schema()
	tx := e2.NewTx(0, 1)
	read := func(key uint64) (int64, error) {
		var v int64
		err := tx.Run(func(tx *core.Tx) error {
			r, err := tx.Read(tbl2, key)
			if err != nil {
				return err
			}
			v = sch.GetInt64(r, 0)
			return nil
		})
		return v, err
	}
	recovered := make([]int64, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		rec, err := read(counterBase + uint64(w))
		if err != nil {
			return res, err
		}
		recovered[w] = rec
		if rec < int64(acked[w]) {
			return res, fmt.Errorf("%w: worker %d recovered %d commits, acked %d (seed %d)",
				ErrDurability, w, rec, acked[w], cfg.Seed)
		}
		limit := int64(acked[w])
		if stopped[w] {
			limit++ // the terminal error may hide one committed-but-unacked txn
		}
		if rec > limit {
			return res, fmt.Errorf("%w: worker %d recovered %d commits, committed at most %d (seed %d)",
				ErrConsistency, w, rec, limit, cfg.Seed)
		}
		var sum int64
		for i := 0; i < cfg.AccountsPerWorker; i++ {
			v, err := read(uint64(w*cfg.AccountsPerWorker + i))
			if err != nil {
				return res, err
			}
			sum += v
		}
		if sum != 0 {
			return res, fmt.Errorf("%w: worker %d account sum %d != 0 (seed %d)",
				ErrAtomicity, w, sum, cfg.Seed)
		}
	}

	// Prefix explainability: the recovered counters name each worker's
	// committed prefix length, and the transfer plans are deterministic, so
	// the exact expected value of every account — not just the per-worker
	// zero sum — is computable. Any deviation means the recovered state is
	// not the result of replaying those prefixes.
	expected := make(map[uint64]int64)
	var expHot int64
	for w := 0; w < cfg.Workers; w++ {
		_, plan := planWorker(cfg, w)
		for i := int64(0); i < recovered[w]; i++ {
			tr := plan[i]
			expected[tr.from] -= tr.delta
			expected[tr.to] += tr.delta
			if tr.hot {
				expHot++
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		for i := 0; i < cfg.AccountsPerWorker; i++ {
			key := uint64(w*cfg.AccountsPerWorker + i)
			v, err := read(key)
			if err != nil {
				return res, err
			}
			if v != expected[key] {
				return res, fmt.Errorf("%w: account %d recovered %d, prefix replay gives %d (seed %d)",
					ErrState, key, v, expected[key], cfg.Seed)
			}
		}
	}
	if v, err := read(hotKey); err != nil {
		return res, err
	} else if v != expHot {
		return res, fmt.Errorf("%w: hot row recovered %d, prefix replay gives %d (seed %d)",
			ErrState, v, expHot, cfg.Seed)
	}

	if cfg.VerifyRecovered {
		n, err := probeRecovered(cfg, e2)
		res.ProbeTxns = n
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// probeRecoveredTxns is the per-worker stamped-probe transaction count for
// the post-recovery isolation check — small, because it runs inside every
// VerifyRecovered torture iteration.
const probeRecoveredTxns = 40

// probeRecovered drives the stamped isolation probe against the recovered
// engine and checks the recorded history: a recovery that hands back an
// engine which no longer isolates is just as broken as one that loses
// commits. Returns the number of committed probe transactions.
func probeRecovered(cfg Config, e *core.Engine) (int, error) {
	if cfg.LogMode == wal.ModeCommand {
		return 0, fmt.Errorf("torture: VerifyRecovered requires value logging (seed %d)", cfg.Seed)
	}
	probe := verify.NewProbe(verify.ProbeConfig{Keys: 8, MinOps: 2, MaxOps: 4})
	hist := verify.NewHistory(cfg.Workers)
	probe.AttachHistory(hist)
	if err := probe.Setup(e); err != nil {
		return 0, err
	}
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := e.NewTx(w, cfg.Seed^uint64(w)*2654435761+1)
			for i := 0; i < probeRecoveredTxns; i++ {
				if err := probe.RunOne(tx); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("torture: recovered-engine probe worker %d (seed %d): %w", w, cfg.Seed, err)
		}
	}
	final, err := probe.FinalVersions(e)
	if err != nil {
		return 0, err
	}
	rep := hist.Check(final)
	if !rep.Ok() {
		return rep.Txns, fmt.Errorf("%w: %s (seed %d)", ErrIsolation, rep.Anomalies[0], cfg.Seed)
	}
	return rep.Txns, nil
}

// dropTailRecords removes the last n intact framed commit records from b,
// plus everything after the n-th-from-last one (any torn tail and any
// trailing epoch markers — the negative control must lose commits, not just
// marker frames). A stream with no markers truncates exactly as before.
func dropTailRecords(b []byte, n int) []byte {
	var starts []int // start offsets of commit-record frames only
	off := 0
	for off+8 <= len(b) {
		size := int(binary.LittleEndian.Uint32(b[off:]))
		if size <= 0 || off+8+size > len(b) {
			break
		}
		if !wal.IsMarkerPayload(b[off+8 : off+8+size]) {
			starts = append(starts, off)
		}
		off += 8 + size
	}
	if n >= len(starts) {
		return b[:0]
	}
	return b[:starts[len(starts)-n]]
}

package torture

import (
	"fmt"
	"sync"

	"next700/internal/core"
	"next700/internal/fault"
)

// This file is the checkpoint-chaos torture harness: the transfer workload
// runs against an engine whose WAL segments and checkpoint objects live in
// a fault.MemStore, checkpoint cycles fire mid-traffic, and the store
// crashes at a scripted lifecycle point — mid-checkpoint-write, between the
// checkpoint installing and the manifest sealing, between sealing and
// truncation, anywhere. The survivor store is then re-attached and bounded
// recovery (newest loadable checkpoint + log tail) must hand back a
// prefix-consistent engine. Runs chain across incarnations: recover, run
// more traffic, checkpoint, crash again — the repeated-crash shape that
// exercises epoch continuity, truncation retention, and sealed-segment
// replay ceilings across the whole manifest history.

// CkptConfig scripts one checkpoint-chaos torture run. The embedded Config
// supplies the workload (protocol, log mode, workers, plan sizes, seed);
// its crash-offset fields (NoCrash, WALStreams, TransientSyncEvery,
// SkipTailRecords, VerifyRecovered) are unused here — the chaos lives in
// the store script instead.
type CkptConfig struct {
	Config
	// Streams is the checkpoint log's stream count (default 2, minimum 2:
	// the checkpointer requires the parallel WAL).
	Streams int
	// Keep is the checkpoint generations to retain (default 2).
	Keep int
	// CheckpointEvery makes each worker request a checkpoint cycle after
	// every N of its own commits (default TxnsPerWorker/4), so cycles race
	// live traffic and the scripted store ops land at varying cycle steps.
	CheckpointEvery int
	// Incarnations is the number of run-crash-recover rounds (default 1).
	Incarnations int
	// Chaos scripts the first incarnation's store. CrashAtOp must leave room
	// for bootstrap: InitCheckpointLog spends Streams+1 mutating ops before
	// any traffic runs.
	Chaos fault.StoreChaos
	// RepeatChaos re-arms the Chaos script (with a per-incarnation seed) in
	// every survivor store, so every incarnation crashes, not just the
	// first. CrashAtOp must then also clear AttachCheckpointLog and the
	// recovery seal (Streams+2 ops) at the start of each incarnation.
	RepeatChaos bool
	// FlipNewestCheckpoint corrupts one byte of the newest checkpoint
	// generation in each survivor before recovery: recovery must fall back
	// to the previous generation and replay the longer tail.
	FlipNewestCheckpoint bool
	// FlipAllCheckpoints corrupts every retained generation — the negative
	// control: once truncation has pruned early segments, no checkpoint
	// means the full history is gone and the harness must detect the
	// durability violation.
	FlipAllCheckpoints bool
}

func (c CkptConfig) normalized() CkptConfig {
	c.Config = c.Config.normalized()
	if c.Streams < 2 {
		c.Streams = 2
	}
	if c.Keep <= 0 {
		c.Keep = 2
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = c.TxnsPerWorker / 4
		if c.CheckpointEvery <= 0 {
			c.CheckpointEvery = 1
		}
	}
	if c.Incarnations <= 0 {
		c.Incarnations = 1
	}
	return c
}

// CkptIncarnation summarizes one run-crash-recover round.
type CkptIncarnation struct {
	// Acked is the commits acknowledged across all workers this round.
	Acked int
	// Stopped is the workers that quit on a terminal error (log death after
	// the store crash); each may hide one committed-but-unacked txn.
	Stopped int
	// StoreCrashed reports the scripted store crash fired this round.
	StoreCrashed bool
	// Cycles and CycleFailures are the checkpointer's counts for the round.
	Cycles, CycleFailures int
	// Recovery is what the post-crash bounded recovery did.
	Recovery core.RecoveryStats
	// Checkpoints, Segments, and SegmentBytes describe the survivor store
	// after recovery sealed it — the footprint the retention lanes bound.
	Checkpoints, Segments int
	SegmentBytes          int64
}

// CkptResult summarizes a checkpoint-chaos run.
type CkptResult struct {
	Seed         uint64
	Incarnations []CkptIncarnation
}

// ckptWorkload derives incarnation inc's workload config: same shape, a
// distinct seed, so each round executes a fresh deterministic plan.
func (c CkptConfig) ckptWorkload(inc int) Config {
	w := c.Config
	w.Seed = c.Seed ^ (uint64(inc) * 0xA24BAED4963EE407)
	return w
}

// RunCkpt executes one checkpoint-chaos torture run and verifies that every
// incarnation's recovery is prefix-consistent. A nil error means every
// invariant held in every incarnation.
func RunCkpt(cfg CkptConfig) (CkptResult, error) {
	cfg = cfg.normalized()
	res := CkptResult{Seed: cfg.Seed}

	store := fault.NewMemStore(cfg.Chaos)
	att, err := core.InitCheckpointLog(store, cfg.Streams, cfg.LogMode)
	if err != nil {
		return res, fmt.Errorf("torture: checkpoint log bootstrap (seed %d): %w", cfg.Seed, err)
	}
	e, tbl, err := buildEngine(cfg.ckptWorkload(0), att.Devices, false)
	if err != nil {
		return res, err
	}
	if _, err := e.RecoverFromStore(store, att, func() error { return loadInitial(cfg.Config, e, tbl) }); err != nil {
		e.Close()
		return res, fmt.Errorf("torture: initial load (seed %d): %w", cfg.Seed, err)
	}

	// Cross-incarnation expectations: the committed prefix baseline per
	// worker, and the exact account state those prefixes produce.
	baseline := make([]int64, cfg.Workers)
	expected := make(map[uint64]int64)
	var expHot int64

	for inc := 0; inc < cfg.Incarnations; inc++ {
		wcfg := cfg.ckptWorkload(inc)
		var ir CkptIncarnation

		ck, err := e.NewCheckpointer(store, cfg.Keep, att.Devices)
		if err != nil {
			e.Close()
			return res, err
		}

		acked := make([]int, cfg.Workers)
		stopped := make([]bool, cfg.Workers)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				seed, plan := planWorker(wcfg, w)
				tx := e.NewTx(w, seed)
				for i, tr := range plan {
					if err := tx.RunProc(procTransfer, encodeParams(uint32(w), tr.from, tr.to, tr.delta, tr.hot)); err != nil {
						stopped[w] = true
						return
					}
					acked[w]++
					if (i+1)%cfg.CheckpointEvery == 0 {
						// Cycle failures (including the scripted store crash)
						// are recorded in the checkpointer's stats; the
						// worker keeps going until its own log dies.
						_ = ck.CheckpointNow()
					}
				}
			}(w)
		}
		wg.Wait()
		st := ck.Stats()
		ir.Cycles, ir.CycleFailures = st.Cycles, st.Failures
		ir.StoreCrashed = store.Crashed()
		for w := 0; w < cfg.Workers; w++ {
			ir.Acked += acked[w]
			if stopped[w] {
				ir.Stopped++
			}
		}
		e.Close() // a failed close just reports the already-observed log death

		// Reboot: the survivor store models the post-crash disk — installed
		// checkpoints whole, segment bytes to their synced watermark plus a
		// seeded cut of the unsynced tail.
		next := fault.StoreChaos{Seed: cfg.Seed + uint64(inc)*0x9E37 + 1}
		if cfg.RepeatChaos && inc+1 < cfg.Incarnations {
			next = cfg.Chaos
			next.Seed = cfg.Chaos.Seed + uint64(inc) + 1
		}
		store = store.Survivor(next)
		if cfg.FlipNewestCheckpoint || cfg.FlipAllCheckpoints {
			if err := flipCheckpoints(store, cfg.FlipAllCheckpoints); err != nil {
				return res, err
			}
		}

		att, err = core.AttachCheckpointLog(store)
		if err != nil {
			return res, fmt.Errorf("torture: re-attach (seed %d, incarnation %d): %w", cfg.Seed, inc, err)
		}
		e, tbl, err = buildEngine(wcfg, att.Devices, false)
		if err != nil {
			return res, err
		}
		e2, tbl2 := e, tbl
		rs, err := e.RecoverFromStore(store, att, func() error { return loadInitial(cfg.Config, e2, tbl2) })
		ir.Recovery = rs
		if err != nil {
			e.Close()
			res.Incarnations = append(res.Incarnations, ir)
			return res, fmt.Errorf("torture: recovery failed (seed %d, incarnation %d): %w", cfg.Seed, inc, err)
		}
		ir.Checkpoints = len(store.CheckpointNames())
		ir.Segments = len(store.SegmentNames())
		ir.SegmentBytes = store.TotalSegmentBytes()

		err = checkCkptState(wcfg, e, tbl, acked, stopped, baseline, expected, &expHot)
		res.Incarnations = append(res.Incarnations, ir)
		if err != nil {
			e.Close()
			return res, fmt.Errorf("%w (incarnation %d)", err, inc)
		}
	}
	e.Close()
	return res, nil
}

// flipCheckpoints corrupts one mid-object byte of the newest retained
// checkpoint generation (or of every generation, for the negative control).
func flipCheckpoints(store *fault.MemStore, all bool) error {
	m, _, err := store.LoadManifest()
	if err != nil {
		return err
	}
	if len(m.Checkpoints) == 0 {
		return fmt.Errorf("torture: no checkpoint generation to corrupt")
	}
	targets := m.Checkpoints[len(m.Checkpoints)-1:]
	if all {
		targets = m.Checkpoints
	}
	for _, ck := range targets {
		if !store.FlipCheckpointByte(ck.Name, 40) {
			return fmt.Errorf("torture: could not corrupt checkpoint %s", ck.Name)
		}
	}
	return nil
}

// checkCkptState verifies the recovered engine against the cross-incarnation
// invariants and folds this incarnation's committed prefixes into the
// running expectations. baseline, expected, and expHot are updated in place.
func checkCkptState(cfg Config, e *core.Engine, tbl *core.Table, acked []int, stopped []bool,
	baseline []int64, expected map[uint64]int64, expHot *int64) error {
	sch := tbl.Schema()
	tx := e.NewTx(0, 1)
	read := func(key uint64) (int64, error) {
		var v int64
		err := tx.Run(func(tx *core.Tx) error {
			r, err := tx.Read(tbl, key)
			if err != nil {
				return err
			}
			v = sch.GetInt64(r, 0)
			return nil
		})
		return v, err
	}

	prefixes := make([]int64, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		total, err := read(counterBase + uint64(w))
		if err != nil {
			return err
		}
		prefix := total - baseline[w]
		if prefix < int64(acked[w]) {
			return fmt.Errorf("%w: worker %d recovered %d commits this round, acked %d (seed %d)",
				ErrDurability, w, prefix, acked[w], cfg.Seed)
		}
		limit := int64(acked[w])
		if stopped[w] {
			limit++ // the terminal error may hide one committed-but-unacked txn
		}
		if prefix > limit {
			return fmt.Errorf("%w: worker %d recovered %d commits this round, committed at most %d (seed %d)",
				ErrConsistency, w, prefix, limit, cfg.Seed)
		}
		prefixes[w] = prefix
		baseline[w] = total
	}

	// Fold the committed prefixes of this incarnation's deterministic plans
	// into the cumulative expected state, then demand an exact match: the
	// recovered state must be precisely the result of replaying every
	// incarnation's committed prefix, nothing more, nothing reordered.
	for w := 0; w < cfg.Workers; w++ {
		_, plan := planWorker(cfg, w)
		for i := int64(0); i < prefixes[w]; i++ {
			tr := plan[i]
			expected[tr.from] -= tr.delta
			expected[tr.to] += tr.delta
			if tr.hot {
				*expHot++
			}
		}
	}
	for w := 0; w < cfg.Workers; w++ {
		var sum int64
		for i := 0; i < cfg.AccountsPerWorker; i++ {
			key := uint64(w*cfg.AccountsPerWorker + i)
			v, err := read(key)
			if err != nil {
				return err
			}
			sum += v
			if v != expected[key] {
				return fmt.Errorf("%w: account %d recovered %d, prefix replay gives %d (seed %d)",
					ErrState, key, v, expected[key], cfg.Seed)
			}
		}
		if sum != 0 {
			return fmt.Errorf("%w: worker %d account sum %d != 0 (seed %d)",
				ErrAtomicity, w, sum, cfg.Seed)
		}
	}
	if v, err := read(hotKey); err != nil {
		return err
	} else if v != *expHot {
		return fmt.Errorf("%w: hot row recovered %d, prefix replay gives %d (seed %d)",
			ErrState, v, *expHot, cfg.Seed)
	}
	return nil
}

// interface conformance pin: the chaos store must keep satisfying the
// engine's store contract structurally (fault cannot import core).
var _ core.CheckpointStore = (*fault.MemStore)(nil)

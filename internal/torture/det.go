package torture

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"next700/internal/core"
	"next700/internal/det"
	"next700/internal/fault"
	"next700/internal/storage"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// Deterministic crash-recovery oracle: because a deterministic batch
// commits as exactly one WAL epoch, and multi-stream recovery truncates to
// the last epoch fully present across all streams, a crash-recovered
// deterministic engine must land exactly on a batch boundary — and
// determinism says which state that boundary has. The oracle runs the same
// seeded batch schedule twice: an uncrashed reference run recording the
// state digest after every batch, and a chaos run whose log devices crash
// at seeded offsets. Recovery's FrontierEpoch names the frontier batch F;
// the recovered digest must be byte-identical to the reference digest after
// batch F, and F must cover every batch whose durability was acknowledged.
// Any torn-batch resurrection, lost acked batch, or cross-run divergence
// shows up as a digest mismatch.

// ErrDeterminism is the digest-oracle violation: the crash-recovered state
// differs from the reference run's state at the recovered batch frontier.
var ErrDeterminism = errors.New("torture: determinism violation (recovered digest differs from reference at frontier batch)")

// DetConfig scripts one deterministic oracle iteration. Every run is a pure
// function of the config, so a failing seed replays identically.
type DetConfig struct {
	// Partitions is the executor/stream count (minimum 2: the batch-atomic
	// recovery argument rests on the parallel WAL's epoch frontier).
	Partitions int
	// Batches is the number of batches in the schedule (default 8).
	Batches int
	// TxnsPerBatch sizes each batch (default 24).
	TxnsPerBatch int
	// Keys is the table size (default 32).
	Keys uint64
	// Seed drives the batch schedule, the crash offsets, and the
	// unsynced-tail cuts.
	Seed uint64
	// NoCrash disables the planned crash (negative control: the frontier
	// must then be the full schedule).
	NoCrash bool
}

func (c DetConfig) normalized() DetConfig {
	if c.Partitions < 2 {
		c.Partitions = 2
	}
	if c.Batches <= 0 {
		c.Batches = 8
	}
	if c.TxnsPerBatch <= 0 {
		c.TxnsPerBatch = 24
	}
	if c.Keys == 0 {
		c.Keys = 32
	}
	return c
}

// DetResult summarizes one oracle iteration.
type DetResult struct {
	Seed uint64
	// Crashed reports that at least one stream reached its crash offset.
	Crashed bool
	// AckedBatches is the number of batches whose seal (durability wait)
	// returned nil before the run ended.
	AckedBatches int
	// FrontierBatch is the batch boundary recovery landed on (the merged
	// epoch frontier; == Batches for a clean run).
	FrontierBatch uint64
	Recovery      core.RecoveryStats
}

// planDetSchedule builds the seeded batch schedule: balanced-update,
// read-update, and cross-partition copy transactions over a small keyspace.
func planDetSchedule(cfg DetConfig) [][]det.TxnPlan {
	rng := xrand.New(cfg.Seed ^ 0xDE70_0C1E)
	batches := make([][]det.TxnPlan, cfg.Batches)
	for b := range batches {
		txns := make([]det.TxnPlan, cfg.TxnsPerBatch)
		for t := range txns {
			switch rng.Intn(3) {
			case 0:
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(cfg.Keys), uint64(int64(rng.Intn(9)-4)))
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(cfg.Keys), uint64(int64(rng.Intn(9)-4)))
			case 1:
				txns[t].Add(det.OpRead, 0, rng.Uint64n(cfg.Keys), 0)
				txns[t].Add(det.OpUpdate, 0, rng.Uint64n(cfg.Keys), uint64(int64(rng.Intn(9)-4)))
			default:
				txns[t].Add(det.OpRecvUpdate, 0, rng.Uint64n(cfg.Keys), uint64(int64(rng.Intn(5))))
				txns[t].Add(det.OpReadSend, 0, rng.Uint64n(cfg.Keys), 0)
			}
		}
		batches[b] = txns
	}
	return batches
}

// buildDetEngine opens a QSTORE engine on the given stream devices with the
// deterministic initial load and returns it with its executor.
func buildDetEngine(cfg DetConfig, devs []wal.Device) (*core.Engine, *core.DetExecutor, error) {
	e, err := core.Open(core.Config{
		Protocol:   "QSTORE",
		Threads:    cfg.Partitions,
		Partitions: cfg.Partitions,
		LogMode:    wal.ModeValue,
		WALStreams: cfg.Partitions,
		LogDevices: devs,
	})
	if err != nil {
		return nil, nil, err
	}
	sch := storage.MustSchema("det_acct", storage.I64("v"))
	tbl, err := e.CreateTable(sch, core.IndexHash)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	row := sch.NewRow()
	for k := uint64(0); k < cfg.Keys; k++ {
		sch.SetInt64(row, 0, int64(k)*7)
		if err := e.Load(tbl, k, row); err != nil {
			e.Close()
			return nil, nil, err
		}
	}
	exec := func(tx *core.Tx, op det.Op, mb *det.Mailbox) error {
		switch op.Kind {
		case det.OpRead:
			_, err := tx.Read(tbl, op.Key)
			return err
		case det.OpUpdate:
			r, err := tx.Update(tbl, op.Key)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, sch.GetInt64(r, 0)+int64(op.Aux))
			return nil
		case det.OpReadSend:
			r, err := tx.Read(tbl, op.Key)
			if err != nil {
				return err
			}
			mb.Send(op.Slot, uint64(sch.GetInt64(r, 0)))
			return nil
		case det.OpRecvUpdate:
			if err := mb.Collect(); err != nil {
				return err
			}
			r, err := tx.Update(tbl, op.Key)
			if err != nil {
				return err
			}
			sch.SetInt64(r, 0, int64(mb.Vals[0])+int64(op.Aux))
			return nil
		default:
			return fmt.Errorf("torture: unknown det op kind %v", op.Kind)
		}
	}
	x, err := core.NewDetExecutor(e, exec)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, x, nil
}

// RunDet executes one deterministic crash-recovery oracle iteration. A nil
// error means every invariant held: no acked batch lost, no torn batch
// resurrected, and the recovered digest matches the reference run's digest
// at the frontier batch.
func RunDet(cfg DetConfig) (DetResult, error) {
	cfg = cfg.normalized()
	res := DetResult{Seed: cfg.Seed}
	schedule := planDetSchedule(cfg)

	// Reference run: clean devices, full schedule, one digest per batch
	// boundary (refDigests[b] = state after b batches).
	refDigests := make([][32]byte, cfg.Batches+1)
	{
		devs := make([]wal.Device, cfg.Partitions)
		for i := range devs {
			devs[i] = &fault.MemDevice{}
		}
		e, x, err := buildDetEngine(cfg, devs)
		if err != nil {
			return res, err
		}
		refDigests[0] = e.StateDigest()
		pl := det.NewPlanner(cfg.Partitions, nil)
		for b, batch := range schedule {
			if _, err := x.ExecuteBatch(pl.PlanBatch(batch)); err != nil {
				x.Close()
				e.Close()
				return res, fmt.Errorf("torture: reference run batch %d (seed %d): %w", b+1, cfg.Seed, err)
			}
			refDigests[b+1] = e.StateDigest()
		}
		x.Close()
		e.Close()
	}

	// Chaos run: one fault device per stream, independently seeded crash
	// offsets scaled to the schedule's record volume.
	rng := xrand.New(cfg.Seed)
	perStream := cfg.Batches * cfg.TxnsPerBatch * estimatedRecordBytes(wal.ModeValue) / cfg.Partitions
	mems := make([]*fault.MemDevice, cfg.Partitions)
	devs := make([]wal.Device, cfg.Partitions)
	fdevs := make([]*fault.Device, cfg.Partitions)
	for i := range mems {
		plan := fault.Plan{Seed: cfg.Seed + uint64(i)}
		if !cfg.NoCrash {
			plan.CrashAtByte = 1 + int64(rng.Uint64n(uint64(perStream)*5/4))
		}
		mems[i] = &fault.MemDevice{}
		fdevs[i] = fault.NewDevice(mems[i], plan)
		devs[i] = fdevs[i]
	}
	e, x, err := buildDetEngine(cfg, devs)
	if err != nil {
		return res, err
	}
	pl := det.NewPlanner(cfg.Partitions, nil)
	for _, batch := range schedule {
		if _, err := x.ExecuteBatch(pl.PlanBatch(batch)); err != nil {
			// Log death mid-schedule: the engine is as good as crashed.
			break
		}
		res.AckedBatches++
	}
	x.Close()
	e.Close()
	for _, fd := range fdevs {
		if fd.Crashed() {
			res.Crashed = true
		}
	}

	// Survivors: each stream keeps its synced prefix plus a seeded cut of
	// its unsynced tail (arbitrary per-device loss, torn records included).
	survivors := make([][]byte, cfg.Partitions)
	for i, mem := range mems {
		data := mem.Bytes()
		cut := mem.SyncedLen()
		if len(data) > cut {
			cut += int(rng.Uint64n(uint64(len(data)-cut) + 1))
		}
		survivors[i] = data[:cut]
	}

	// Recover into a fresh engine built from the same deterministic load.
	rdevs := make([]wal.Device, cfg.Partitions)
	for i := range rdevs {
		rdevs[i] = &fault.MemDevice{}
	}
	e2, x2, err := buildDetEngine(cfg, rdevs)
	if err != nil {
		return res, err
	}
	x2.Close()
	defer e2.Close()
	readers := make([]io.Reader, cfg.Partitions)
	for i := range survivors {
		readers[i] = bytes.NewReader(survivors[i])
	}
	rs, err := e2.RecoverStreams(readers)
	res.Recovery = rs
	if err != nil {
		return res, fmt.Errorf("torture: det recovery failed (seed %d): %w", cfg.Seed, err)
	}
	res.FrontierBatch = rs.FrontierEpoch

	// Invariants. Durability: every acked batch is inside the frontier.
	if res.FrontierBatch < uint64(res.AckedBatches) {
		return res, fmt.Errorf("%w: frontier batch %d < %d acked batches (seed %d)",
			ErrDurability, res.FrontierBatch, res.AckedBatches, cfg.Seed)
	}
	// Consistency: recovery cannot invent batches beyond the schedule.
	if res.FrontierBatch > uint64(cfg.Batches) {
		return res, fmt.Errorf("%w: frontier batch %d beyond schedule of %d (seed %d)",
			ErrConsistency, res.FrontierBatch, cfg.Batches, cfg.Seed)
	}
	// Determinism: the recovered state is byte-identical to the reference
	// run's state at the frontier batch.
	got := e2.StateDigest()
	want := refDigests[res.FrontierBatch]
	if !bytes.Equal(got[:], want[:]) {
		return res, fmt.Errorf("%w: batch %d digest %x != reference %x (seed %d)",
			ErrDeterminism, res.FrontierBatch, got, want, cfg.Seed)
	}
	return res, nil
}

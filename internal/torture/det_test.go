package torture

import (
	"testing"
)

// TestDetOracleNoCrash is the clean-path control: with no planned crash the
// frontier must be the entire schedule and the recovered digest must equal
// the reference run's final digest.
func TestDetOracleNoCrash(t *testing.T) {
	res, err := RunDet(DetConfig{Seed: 42, NoCrash: true})
	if err != nil {
		t.Fatalf("no-crash oracle: %v", err)
	}
	if res.Crashed {
		t.Fatal("no-crash run reported a crash")
	}
	if res.AckedBatches != 8 {
		t.Fatalf("acked %d batches, want 8", res.AckedBatches)
	}
	if res.FrontierBatch != 8 {
		t.Fatalf("frontier batch %d, want the full schedule (8)", res.FrontierBatch)
	}
}

// TestDetOracleCrashSeeds sweeps seeded crash iterations across partition
// counts: every recovered engine must land on a batch boundary whose digest
// matches the reference run, with no acked batch lost. The sweep must
// actually exercise crashes and mid-schedule truncation, or the oracle is
// vacuous.
func TestDetOracleCrashSeeds(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	for _, parts := range []int{2, 4} {
		parts := parts
		t.Run(map[int]string{2: "parts2", 4: "parts4"}[parts], func(t *testing.T) {
			t.Parallel()
			var crashed, truncated int
			for s := 0; s < seeds; s++ {
				seed := uint64(s)*0x9e3779b9 + uint64(parts)
				res, err := RunDet(DetConfig{Partitions: parts, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Crashed {
					crashed++
				}
				if res.FrontierBatch < 8 {
					truncated++
				}
			}
			if crashed == 0 {
				t.Fatalf("no seed crashed in %d iterations", seeds)
			}
			if truncated == 0 {
				t.Fatalf("no seed truncated mid-schedule in %d iterations", seeds)
			}
		})
	}
}

package torture

import (
	"errors"
	"testing"

	"next700/internal/wal"
)

// tortureSeeds returns the per-combination seed count: 8 combinations run
// below, so the full suite performs >= 200 seeded crash-recovery iterations
// (and still a meaningful sweep under -short and -race).
func tortureSeeds(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 38
}

func TestCrashRecoveryTorture(t *testing.T) {
	protocols := []string{"SILO", "NO_WAIT", "MVCC", "TICTOC"}
	modes := []struct {
		name string
		mode wal.Mode
	}{
		{"value", wal.ModeValue},
		{"command", wal.ModeCommand},
	}
	seeds := tortureSeeds(t)
	for _, protocol := range protocols {
		for _, m := range modes {
			protocol, m := protocol, m
			t.Run(protocol+"/"+m.name, func(t *testing.T) {
				t.Parallel()
				var crashed, torn int
				for s := 0; s < seeds; s++ {
					seed := uint64(s)*0x9e3779b9 + uint64(len(protocol)) + uint64(m.mode)
					res, err := Run(Config{
						Protocol:           protocol,
						LogMode:            m.mode,
						Seed:               seed,
						TransientSyncEvery: 5,
						// The stamped isolation probe needs ad-hoc
						// (non-proc) transactions, which only value
						// logging can log.
						VerifyRecovered: m.mode == wal.ModeValue,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if m.mode == wal.ModeValue && res.ProbeTxns == 0 {
						t.Fatalf("seed %d: recovered-engine probe committed no transactions", seed)
					}
					if res.Crashed {
						crashed++
					}
					if res.Recovery.TornBytes > 0 {
						torn++
					}
				}
				// The seeded crash offsets must actually exercise both the
				// crash and the torn-tail paths (deterministic given seeds).
				if crashed == 0 {
					t.Fatalf("no seed crashed in %d iterations", seeds)
				}
				if torn == 0 {
					t.Fatalf("no seed produced a torn tail in %d iterations", seeds)
				}
			})
		}
	}
}

// TestCrashRecoveryTortureStreams runs the torture loop on the parallel WAL
// with one chaos device per stream: independently drawn crash offsets and
// unsynced-tail cuts mean epochs routinely end up torn — present in one
// stream, missing in another — and the recovery merge must truncate them to
// the last fully present epoch without ever losing an acked commit.
func TestCrashRecoveryTortureStreams(t *testing.T) {
	protocols := []string{"SILO", "MVCC"}
	modes := []struct {
		name string
		mode wal.Mode
	}{
		{"value", wal.ModeValue},
		{"command", wal.ModeCommand},
	}
	seeds := tortureSeeds(t)
	for _, protocol := range protocols {
		for _, m := range modes {
			protocol, m := protocol, m
			t.Run(protocol+"/"+m.name, func(t *testing.T) {
				t.Parallel()
				var crashed, truncated int
				for s := 0; s < seeds; s++ {
					seed := uint64(s)*0x517cc1b7 + uint64(len(protocol)) + uint64(m.mode)
					res, err := Run(Config{
						Protocol:           protocol,
						LogMode:            m.mode,
						Workers:            4,
						WALStreams:         3,
						Seed:               seed,
						TransientSyncEvery: 5,
						VerifyRecovered:    m.mode == wal.ModeValue,
					})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if res.Recovery.Streams != 3 {
						t.Fatalf("seed %d: recovered %d streams, want 3", seed, res.Recovery.Streams)
					}
					if res.Crashed {
						crashed++
					}
					if res.Recovery.TruncatedRecords > 0 {
						truncated++
					}
				}
				if crashed == 0 {
					t.Fatalf("no seed crashed in %d iterations", seeds)
				}
				// The torn-epoch case: some seed must have left intact
				// records beyond the merged frontier that recovery refused
				// to resurrect. This is the invariant the multi-stream
				// harness exists to exercise.
				if truncated == 0 {
					t.Fatalf("no seed truncated a torn epoch in %d iterations", seeds)
				}
			})
		}
	}
}

// TestTortureStreamsDetectsDroppedRecord: the negative control must still
// fire through the multi-stream merge — dropping the last commit record
// (not merely a marker frame) from stream 0 of a cleanly shut down run has
// to trip the durability check.
func TestTortureStreamsDetectsDroppedRecord(t *testing.T) {
	for _, m := range []struct {
		name string
		mode wal.Mode
	}{{"value", wal.ModeValue}, {"command", wal.ModeCommand}} {
		t.Run(m.name, func(t *testing.T) {
			_, err := Run(Config{
				Protocol:        "SILO",
				LogMode:         m.mode,
				Workers:         4,
				WALStreams:      3,
				Seed:            11,
				NoCrash:         true,
				SkipTailRecords: 1,
			})
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("dropped record not detected: err=%v", err)
			}
		})
	}
}

// TestTortureStreamsCleanRun: a clean multi-stream shutdown must recover
// every commit with nothing truncated.
func TestTortureStreamsCleanRun(t *testing.T) {
	res, err := Run(Config{
		Protocol: "SILO", LogMode: wal.ModeValue,
		Workers: 4, WALStreams: 4, Seed: 3, NoCrash: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("NoCrash run reported a crash")
	}
	if want := 4 * 40; res.Acked != want {
		t.Fatalf("acked %d, want %d", res.Acked, want)
	}
	if res.Recovery.TruncatedRecords != 0 {
		t.Fatalf("clean run truncated records: %+v", res.Recovery)
	}
	if res.Recovery.Records != res.Acked {
		t.Fatalf("recovered %d records, acked %d", res.Recovery.Records, res.Acked)
	}
}

// TestTortureDetectsDroppedRecord is the harness's negative control: with a
// clean shutdown every commit is acknowledged, so silently dropping the
// last log record MUST trip the durability check. A harness that passes
// this proves it can actually detect the violations it claims to rule out.
func TestTortureDetectsDroppedRecord(t *testing.T) {
	for _, m := range []struct {
		name string
		mode wal.Mode
	}{{"value", wal.ModeValue}, {"command", wal.ModeCommand}} {
		t.Run(m.name, func(t *testing.T) {
			_, err := Run(Config{
				Protocol:        "SILO",
				LogMode:         m.mode,
				Seed:            7,
				NoCrash:         true,
				SkipTailRecords: 1,
			})
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("dropped record not detected: err=%v", err)
			}
		})
	}
}

// TestTortureCleanRun: a NoCrash run with no faults must recover every
// commit exactly.
func TestTortureCleanRun(t *testing.T) {
	res, err := Run(Config{Protocol: "SILO", LogMode: wal.ModeValue, Seed: 3, NoCrash: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Fatal("NoCrash run reported a crash")
	}
	if want := 3 * 40; res.Acked != want {
		t.Fatalf("acked %d, want %d", res.Acked, want)
	}
	if res.Recovery.TornBytes != 0 || res.Recovery.CorruptTailRecords != 0 {
		t.Fatalf("clean log replayed with damage: %+v", res.Recovery)
	}
}

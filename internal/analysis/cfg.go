package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds intraprocedural control-flow graphs from function bodies.
// The CFG is the substrate for the flow-sensitive analyzers (lockscope,
// deadlineflow, terminalabort): where the PR-5 analyzers see a function as a
// bag of AST nodes, a CFG-based analyzer sees *where in the function* a fact
// holds — a lock held on one branch but not the other, a deadline tested
// against zero before an unbounded wait, a continue guarded by a transient
// classification.
//
// Design:
//
//   - Blocks hold leaf statements and control-header expressions (an if's
//     init and cond, a for's cond, a switch tag) in source order. Nested
//     control statements never appear inside a block's node list — they are
//     decomposed into blocks and edges.
//   - Branch edges carry assumptions: the then-successor of `if c` knows
//     c==true, the else-successor c==false. Conjunctions decompose on the
//     true edge (a && b ⇒ both true), disjunctions on the false edge
//     (a || b ⇒ both false), and negations invert — exactly the shapes the
//     deadline-guard and abort-classification idioms use.
//   - defer is a plain node: a deferred unlock runs at function exit, so a
//     flow analysis correctly sees the lock held from the acquisition to
//     the end of every path (the defer-unlock-in-loop case falls out: the
//     back edge carries the held lock into the next iteration).
//   - select comm clauses are marked (Block.SelectComm): a receive inside a
//     select is a scheduling choice, not an unbounded wait, and lockscope
//     must not flag it as a blocking channel op.
//   - panic(...) and runtime-terminating calls end a block with an edge to
//     Exit, like return.
//
// goto is supported for labels defined anywhere in the body (forward gotos
// are patched after the build). Unreachable code lands in predecessor-less
// blocks, which the solver seeds with ⊤/∅ like any other entry-disconnected
// block.

// Assumption is one branch-condition fact attached to a block entry: Cond
// evaluated to Value on every edge that was created carrying it.
type Assumption struct {
	Cond  ast.Expr
	Value bool
}

// Block is one basic block.
type Block struct {
	Index int
	// Nodes are the block's leaf statements and control-header expressions
	// in source order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Assume lists branch-condition facts established on entry to this
	// block (all inbound edges created during structured control flow carry
	// them; a goto or labeled-branch edge into the block clears them).
	Assume []Assumption
	// SelectComm marks a block holding a select communication clause.
	SelectComm bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

type loopFrame struct {
	label        string
	breakTo      *Block
	continueTo   *Block
	switchTarget bool // break applies, continue does not
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while the current point is unreachable
	loops  []loopFrame
	labels map[string]*Block
	gotos  []struct {
		from  *Block
		label string
	}
}

// BuildCFG constructs the control-flow graph for body. It never fails: any
// construct it cannot model precisely degrades to conservative straight-line
// placement.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*Block)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	// Patch forward gotos now that every label's block exists.
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
			// A goto edge bypasses the structured branch that created the
			// target's assumptions; they no longer hold on every entry.
			target.Assume = nil
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a leaf node to the current block (no-op when unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startDangling opens a fresh predecessor-less block for code following a
// terminator (return/branch), so later statements still have a home.
func (b *cfgBuilder) startDangling() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		if b.cur == nil {
			b.startDangling()
		}
		b.stmt(s, "")
	}
}

// assume attaches the decomposed branch facts for cond==val to blk.
func assume(blk *Block, cond ast.Expr, val bool) {
	if blk == nil || cond == nil {
		return
	}
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			assume(blk, x.X, !val)
			return
		}
	case *ast.BinaryExpr:
		if (x.Op == token.LAND && val) || (x.Op == token.LOR && !val) {
			assume(blk, x.X, val)
			assume(blk, x.Y, val)
			return
		}
	}
	blk.Assume = append(blk.Assume, Assumption{Cond: cond, Value: val})
}

// stmt lowers one statement. label is the pending label when the statement
// is the body of a LabeledStmt (so labeled break/continue resolve).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		// The label targets a fresh block so gotos and labeled branches have
		// a join point.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[x.Label.Name] = target
		b.stmt(x.Stmt, x.Label.Name)

	case *ast.IfStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		b.add(x.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		assume(thenBlk, x.Cond, true)
		b.edge(condBlk, thenBlk)
		var elseBlk *Block
		if x.Else != nil {
			elseBlk = b.newBlock()
			assume(elseBlk, x.Cond, false)
			b.edge(condBlk, elseBlk)
		}
		join := b.newBlock()
		if x.Else == nil {
			assume(join, x.Cond, false)
			b.edge(condBlk, join)
		}
		b.cur = thenBlk
		b.stmt(x.Body, "")
		b.edge(b.cur, join)
		if elseBlk != nil {
			b.cur = elseBlk
			b.stmt(x.Else, "")
			b.edge(b.cur, join)
		}
		if len(join.Preds) == 0 {
			b.cur = nil
			return
		}
		// The no-else join keeps cond==false only while the then branch
		// never reaches it (early-return guard); otherwise both polarities
		// merge and the fact is dropped.
		if x.Else == nil {
			for _, p := range join.Preds {
				if p != condBlk {
					join.Assume = nil
					break
				}
			}
		}
		b.cur = join

	case *ast.ForStmt:
		if x.Init != nil {
			b.stmt(x.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if x.Cond != nil {
			head.Nodes = append(head.Nodes, x.Cond)
		}
		bodyBlk := b.newBlock()
		exitBlk := b.newBlock()
		if x.Cond != nil {
			assume(bodyBlk, x.Cond, true)
			assume(exitBlk, x.Cond, false)
			b.edge(head, exitBlk)
		}
		b.edge(head, bodyBlk)
		post := head
		if x.Post != nil {
			post = b.newBlock()
			b.cur = post
			b.stmt(x.Post, "")
			b.edge(b.cur, head)
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exitBlk, continueTo: post})
		b.cur = bodyBlk
		b.stmt(x.Body, "")
		b.edge(b.cur, post)
		b.loops = b.loops[:len(b.loops)-1]
		if x.Cond == nil && len(exitBlk.Preds) == 0 {
			b.cur = nil // `for {}` with no break never falls through
			return
		}
		b.cur = exitBlk

	case *ast.RangeStmt:
		// The range expression is evaluated once, in the current block; the
		// header re-tests per iteration.
		b.add(x.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Nodes = append(head.Nodes, x) // key/value (re)definition point
		bodyBlk := b.newBlock()
		exitBlk := b.newBlock()
		b.edge(head, bodyBlk)
		b.edge(head, exitBlk)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: exitBlk, continueTo: head})
		b.cur = bodyBlk
		b.stmt(x.Body, "")
		b.edge(b.cur, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = exitBlk

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(x, label)

	case *ast.SelectStmt:
		join := b.newBlock()
		from := b.cur
		b.loops = append(b.loops, loopFrame{label: label, breakTo: join, switchTarget: true})
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			clause.SelectComm = true
			b.edge(from, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(x.Body.List) == 0 {
			b.edge(from, join)
		}
		if len(join.Preds) == 0 {
			b.cur = nil
			return
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if t := b.findLoop(x.Label, true); t != nil {
				b.edge(b.cur, t.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findLoop(x.Label, false); t != nil {
				b.add(x) // terminalabort checks facts at the continue itself
				b.edge(b.cur, t.continueTo)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil && x.Label != nil {
				b.gotos = append(b.gotos, struct {
					from  *Block
					label string
				}{b.cur, x.Label.Name})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled structurally in switchStmt; nothing to do here.
		}

	case *ast.ExprStmt:
		b.add(x)
		if isPanicCall(x.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	default:
		// Assignments, declarations, sends, defers, go statements, empty
		// statements: leaf nodes.
		b.add(s)
	}
}

// switchStmt lowers expression and type switches, including fallthrough.
func (b *cfgBuilder) switchStmt(s ast.Stmt, label string) {
	var init ast.Stmt
	var header ast.Node
	var clauses []ast.Stmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		init, header = x.Init, x.Tag
		clauses = x.Body.List
	case *ast.TypeSwitchStmt:
		init, header = x.Init, x.Assign
		clauses = x.Body.List
	}
	if init != nil {
		b.stmt(init, "")
	}
	if header != nil {
		b.add(header)
	}
	from := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join, switchTarget: true})

	// First pass: create a body block per clause so fallthrough can link to
	// the next clause's body.
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		bodies[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(from, bodies[i])
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(bodies) {
					b.edge(b.cur, bodies[i+1])
				}
				fellThrough = true
				b.cur = nil
				break
			}
			if b.cur == nil {
				b.startDangling()
			}
			b.stmt(st, "")
		}
		if !fellThrough {
			b.edge(b.cur, join)
		}
	}
	if !hasDefault {
		b.edge(from, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if len(join.Preds) == 0 {
		b.cur = nil
		return
	}
	b.cur = join
}

// findLoop resolves the break/continue target frame. isBreak selects whether
// switch/select frames count.
func (b *cfgBuilder) findLoop(label *ast.Ident, isBreak bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if !isBreak && f.switchTarget {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// The annotation grammar. Every directive is a line comment of the form
//
//	//next700:verb            (marker verbs)
//	//next700:verb(args)      (verbs carrying a reason or parameter)
//
// attached either to a declaration (in its doc comment — applies to the whole
// function or type) or to a statement (same line or the line immediately
// above — applies to that line only). Verbs:
//
//	hotpath             — this function must not allocate, transitively.
//	allowalloc(reason)  — audited allocation; suppresses hotpath findings
//	                      for the annotated function or line.
//	allowwait(reason)   — audited unbounded wait; suppresses boundedwait.
//	allowabort(reason)  — audited unclassified error; suppresses abortclass.
//	lockorder(ordered)  — acquisitions in this function are internally
//	                      ordered (e.g. by sorted partition index); the
//	                      lockorder analyzer skips its self-edges.
//	cachepad(N)         — this type is cache-line padded to N bytes;
//	                      atomicalign checks the claim instead of guessing.
//
// Reasons are mandatory for the allow* verbs: an escape hatch without an
// audit trail is how contracts rot.
const annotationPrefix = "//next700:"

// Directive verbs and the analyzer that owns each (annotation-grammar
// problems are reported under the owner).
var verbOwner = map[string]string{
	"hotpath":    "hotpath",
	"allowalloc": "hotpath",
	"allowwait":  "boundedwait",
	"allowabort": "abortclass",
	"lockorder":  "lockorder",
	"cachepad":   "atomicalign",
}

// verbsNeedingArgs lists verbs whose parenthesized argument is required.
var verbsNeedingArgs = map[string]bool{
	"allowalloc": true,
	"allowwait":  true,
	"allowabort": true,
	"lockorder":  true,
	"cachepad":   true,
}

var directiveRE = regexp.MustCompile(`^//next700:([a-z]+)(?:\((.*)\))?\s*$`)

// Directive is one parsed //next700: annotation.
type Directive struct {
	Verb string
	// Arg is the parenthesized argument (reason text, padding size, ...).
	Arg string
	Pos token.Pos
}

// Annotations indexes every //next700: directive in the program three ways:
// by annotated function, by annotated type, and by source line (for
// statement-level escapes).
type Annotations struct {
	// Funcs maps a function's types.Func (Origin) to its doc directives.
	Funcs map[*types.Func][]Directive
	// FuncDecls maps the declaring ast.FuncDecl to the same directives
	// (used when resolving bodies back to annotations without re-deriving
	// the object).
	FuncDecls map[*ast.FuncDecl][]Directive
	// Types maps a named type's object to its doc directives.
	Types map[types.Object][]Directive
	// Lines maps "file:line" to directives that apply to that source line.
	// A directive on its own line applies to the following line as well.
	Lines map[string][]Directive
	// Problems are grammar violations (unknown verb, missing reason),
	// attributed to the owning analyzer.
	Problems []Diagnostic
}

// Annotations parses (once) and returns the program's annotation index.
func (p *Program) Annotations() *Annotations {
	if p.ann != nil {
		return p.ann
	}
	ann := &Annotations{
		Funcs:     make(map[*types.Func][]Directive),
		FuncDecls: make(map[*ast.FuncDecl][]Directive),
		Types:     make(map[types.Object][]Directive),
		Lines:     make(map[string][]Directive),
	}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ann.indexFile(p.Fset, pkg, file)
		}
	}
	p.ann = ann
	return ann
}

func (a *Annotations) indexFile(fset *token.FileSet, pkg *Package, file *ast.File) {
	// Declaration-level directives live in doc comments.
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			dirs := a.parseGroup(d.Doc)
			if len(dirs) == 0 {
				continue
			}
			a.FuncDecls[d] = dirs
			if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
				a.Funcs[obj.Origin()] = dirs
			}
		case *ast.GenDecl:
			// A doc comment on the GenDecl applies to a sole spec; per-spec
			// docs win when present.
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				dirs := a.parseGroup(doc)
				if len(dirs) == 0 {
					continue
				}
				if obj, ok := pkg.Info.Defs[ts.Name]; ok {
					a.Types[obj] = dirs
				}
			}
		}
	}
	// Line-level directives: every comment anywhere in the file, indexed by
	// its own line and the next (a trailing comment annotates its line; a
	// standalone comment annotates the statement below it).
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, ok := a.parseOne(c)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := lineKey(pos.Filename, line)
				a.Lines[key] = append(a.Lines[key], dir)
			}
		}
	}
}

func (a *Annotations) parseGroup(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var dirs []Directive
	for _, c := range doc.List {
		if dir, ok := a.parseOne(c); ok {
			dirs = append(dirs, dir)
		}
	}
	return dirs
}

func (a *Annotations) parseOne(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, annotationPrefix) {
		return Directive{}, false
	}
	m := directiveRE.FindStringSubmatch(c.Text)
	if m == nil {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "hotpath",
			Message:  "malformed next700 directive: want //next700:verb or //next700:verb(args)",
		})
		return Directive{}, false
	}
	verb, arg := m[1], strings.TrimSpace(m[2])
	owner, known := verbOwner[verb]
	if !known {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "hotpath",
			Message:  "unknown next700 directive verb " + strconv.Quote(verb),
		})
		return Directive{}, false
	}
	if verbsNeedingArgs[verb] && arg == "" {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: owner,
			Message:  "next700:" + verb + " requires a reason argument: //next700:" + verb + "(why this is safe)",
		})
		return Directive{}, false
	}
	return Directive{Verb: verb, Arg: arg, Pos: c.Pos()}, true
}

func lineKey(filename string, line int) string {
	return filename + ":" + strconv.Itoa(line)
}

// FuncHas reports whether fn (by Origin) carries a directive with verb.
func (a *Annotations) FuncHas(fn *types.Func, verb string) bool {
	if fn == nil {
		return false
	}
	for _, d := range a.Funcs[fn.Origin()] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// DeclHas reports whether the declaration carries a directive with verb.
func (a *Annotations) DeclHas(decl *ast.FuncDecl, verb string) bool {
	for _, d := range a.FuncDecls[decl] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// LineHas reports whether the source line of pos carries a directive with
// verb (same line or the line above).
func (a *Annotations) LineHas(fset *token.FileSet, pos token.Pos, verb string) bool {
	p := fset.Position(pos)
	for _, d := range a.Lines[lineKey(p.Filename, p.Line)] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// TypeDirective returns the first directive with verb on the named type's
// object, if any.
func (a *Annotations) TypeDirective(obj types.Object, verb string) (Directive, bool) {
	for _, d := range a.Types[obj] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

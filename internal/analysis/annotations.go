package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// The annotation grammar. Every directive is a line comment of the form
//
//	//next700:verb            (marker verbs)
//	//next700:verb(args)      (verbs carrying a reason or parameter)
//
// attached either to a declaration (in its doc comment — applies to the whole
// function or type) or to a statement (same line or the line immediately
// above — applies to that line only). Verbs:
//
//	hotpath             — this function must not allocate, transitively.
//	allowalloc(reason)  — audited allocation; suppresses hotpath findings
//	                      for the annotated function or line.
//	allowwait(reason)   — audited unbounded wait; suppresses boundedwait.
//	allowabort(reason)  — audited unclassified error; suppresses abortclass.
//	lockorder(ordered)  — acquisitions in this function are internally
//	                      ordered (e.g. by sorted partition index); the
//	                      lockorder analyzer skips its self-edges.
//	cachepad(N)         — this type is cache-line padded to N bytes;
//	                      atomicalign checks the claim instead of guessing.
//	locked(class: why)  — audited operation under the named lock class;
//	                      suppresses lockscope for the function or line.
//	allowunbounded(why) — audited unbounded blocking variant on a hot path;
//	                      suppresses deadlineflow.
//	allowretry(why)     — audited retry decision without a transient
//	                      classification guard; suppresses terminalabort.
//
// Reasons are mandatory for every suppression verb: an escape hatch without
// an audit trail is how contracts rot. The staleannotation pass closes the
// other half of that loop: a suppression that no longer suppresses anything
// is reported and must be deleted.
const annotationPrefix = "//next700:"

// Directive verbs and the analyzer that owns each (annotation-grammar
// problems are reported under the owner).
var verbOwner = map[string]string{
	"hotpath":        "hotpath",
	"allowalloc":     "hotpath",
	"allowwait":      "boundedwait",
	"allowabort":     "abortclass",
	"lockorder":      "lockorder",
	"cachepad":       "atomicalign",
	"locked":         "lockscope",
	"allowunbounded": "deadlineflow",
	"allowretry":     "terminalabort",
}

// verbsNeedingArgs lists verbs whose parenthesized argument is required.
var verbsNeedingArgs = map[string]bool{
	"allowalloc":     true,
	"allowwait":      true,
	"allowabort":     true,
	"lockorder":      true,
	"cachepad":       true,
	"locked":         true,
	"allowunbounded": true,
	"allowretry":     true,
}

// suppressionVerbs are the verbs whose only effect is to silence findings.
// The staleannotation pass audits exactly these: each must have silenced (or
// scoped out) at least one would-be finding of its owning analyzer during
// the run, or it is rot.
var suppressionVerbs = map[string]bool{
	"allowalloc":     true,
	"allowwait":      true,
	"allowabort":     true,
	"lockorder":      true,
	"locked":         true,
	"allowunbounded": true,
	"allowretry":     true,
}

var directiveRE = regexp.MustCompile(`^//next700:([a-z]+)(?:\((.*)\))?\s*$`)

// Directive is one parsed //next700: annotation. Directives are interned per
// physical comment: the declaration index, the line index, and the flat list
// all share one *Directive, so usage marks observed through any of them are
// visible to the staleannotation pass.
type Directive struct {
	Verb string
	// Arg is the parenthesized argument (reason text, padding size, ...).
	Arg string
	Pos token.Pos
}

// Annotations indexes every //next700: directive in the program three ways:
// by annotated function, by annotated type, and by source line (for
// statement-level escapes). It also tracks which suppression directives were
// actually exercised, for the staleannotation pass.
type Annotations struct {
	// Funcs maps a function's types.Func (Origin) to its doc directives.
	Funcs map[*types.Func][]*Directive
	// FuncDecls maps the declaring ast.FuncDecl to the same directives
	// (used when resolving bodies back to annotations without re-deriving
	// the object).
	FuncDecls map[*ast.FuncDecl][]*Directive
	// Types maps a named type's object to its doc directives.
	Types map[types.Object][]*Directive
	// Lines maps "file:line" to directives that apply to that source line.
	// A directive on its own line applies to the following line as well.
	Lines map[string][]*Directive
	// All is every parsed directive in the program, one entry per physical
	// comment, in file order.
	All []*Directive
	// Problems are grammar violations (unknown verb, missing reason),
	// attributed to the owning analyzer.
	Problems []Diagnostic

	used map[*Directive]bool
}

// Annotations parses (once) and returns the program's annotation index.
func (p *Program) Annotations() *Annotations {
	if p.ann != nil {
		return p.ann
	}
	ann := &Annotations{
		Funcs:     make(map[*types.Func][]*Directive),
		FuncDecls: make(map[*ast.FuncDecl][]*Directive),
		Types:     make(map[types.Object][]*Directive),
		Lines:     make(map[string][]*Directive),
		used:      make(map[*Directive]bool),
	}
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			ann.indexFile(p.Fset, pkg, file)
		}
	}
	p.ann = ann
	return ann
}

func (a *Annotations) indexFile(fset *token.FileSet, pkg *Package, file *ast.File) {
	// Parse each physical comment exactly once so every index shares the
	// same *Directive (usage marks must be visible across indexes).
	byComment := make(map[*ast.Comment]*Directive)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, ok := a.parseOne(c)
			if !ok {
				continue
			}
			byComment[c] = dir
			a.All = append(a.All, dir)
			// Line-level index: a trailing comment annotates its own line; a
			// standalone comment annotates the statement below it.
			pos := fset.Position(c.Pos())
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := lineKey(pos.Filename, line)
				a.Lines[key] = append(a.Lines[key], dir)
			}
		}
	}

	// Declaration-level directives live in doc comments.
	group := func(doc *ast.CommentGroup) []*Directive {
		if doc == nil {
			return nil
		}
		var dirs []*Directive
		for _, c := range doc.List {
			if d := byComment[c]; d != nil {
				dirs = append(dirs, d)
			}
		}
		return dirs
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			dirs := group(d.Doc)
			if len(dirs) == 0 {
				continue
			}
			a.FuncDecls[d] = dirs
			if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
				a.Funcs[obj.Origin()] = dirs
			}
		case *ast.GenDecl:
			// A doc comment on the GenDecl applies to a sole spec; per-spec
			// docs win when present.
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				dirs := group(doc)
				if len(dirs) == 0 {
					continue
				}
				if obj, ok := pkg.Info.Defs[ts.Name]; ok {
					a.Types[obj] = dirs
				}
			}
		}
	}
}

func (a *Annotations) parseOne(c *ast.Comment) (*Directive, bool) {
	if !strings.HasPrefix(c.Text, annotationPrefix) {
		return nil, false
	}
	m := directiveRE.FindStringSubmatch(c.Text)
	if m == nil {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "hotpath",
			Message:  "malformed next700 directive: want //next700:verb or //next700:verb(args)",
		})
		return nil, false
	}
	verb, arg := m[1], strings.TrimSpace(m[2])
	owner, known := verbOwner[verb]
	if !known {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: "hotpath",
			Message:  "unknown next700 directive verb " + strconv.Quote(verb),
		})
		return nil, false
	}
	if verbsNeedingArgs[verb] && arg == "" {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: owner,
			Message:  "next700:" + verb + " requires a reason argument: //next700:" + verb + "(why this is safe)",
		})
		return nil, false
	}
	if verb == "locked" && !strings.ContainsAny(arg, ",:") {
		a.Problems = append(a.Problems, Diagnostic{
			Pos:      c.Pos(),
			Analyzer: owner,
			Message:  "next700:locked requires both the lock class and a reason: //next700:locked(Type.field: why this is safe)",
		})
		return nil, false
	}
	return &Directive{Verb: verb, Arg: arg, Pos: c.Pos()}, true
}

func lineKey(filename string, line int) string {
	return filename + ":" + strconv.Itoa(line)
}

// markUsed records that the directive suppressed (or scoped out) a finding.
func (a *Annotations) markUsed(d *Directive) { a.used[d] = true }

// Used reports whether the directive was exercised during analysis.
func (a *Annotations) Used(d *Directive) bool { return a.used[d] }

// FuncHas reports whether fn (by Origin) carries a directive with verb.
// It does not mark usage; use SuppressFunc for suppression decisions.
func (a *Annotations) FuncHas(fn *types.Func, verb string) bool {
	if fn == nil {
		return false
	}
	for _, d := range a.Funcs[fn.Origin()] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// SuppressFunc is FuncHas plus usage marking: a true result records that the
// directive changed the analyzer's behavior (skipped or exempted a scope),
// which is what the staleannotation pass audits.
func (a *Annotations) SuppressFunc(fn *types.Func, verb string) bool {
	if fn == nil {
		return false
	}
	hit := false
	for _, d := range a.Funcs[fn.Origin()] {
		if d.Verb == verb {
			a.markUsed(d)
			hit = true
		}
	}
	return hit
}

// DeclHas reports whether the declaration carries a directive with verb.
func (a *Annotations) DeclHas(decl *ast.FuncDecl, verb string) bool {
	for _, d := range a.FuncDecls[decl] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// SuppressDecl is DeclHas plus usage marking.
func (a *Annotations) SuppressDecl(decl *ast.FuncDecl, verb string) bool {
	hit := false
	for _, d := range a.FuncDecls[decl] {
		if d.Verb == verb {
			a.markUsed(d)
			hit = true
		}
	}
	return hit
}

// LineHas reports whether the source line of pos carries a directive with
// verb (same line or the line above). It does not mark usage.
func (a *Annotations) LineHas(fset *token.FileSet, pos token.Pos, verb string) bool {
	p := fset.Position(pos)
	for _, d := range a.Lines[lineKey(p.Filename, p.Line)] {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// SuppressLine is LineHas plus usage marking: a true result records that the
// directive suppressed a finding at pos.
func (a *Annotations) SuppressLine(fset *token.FileSet, pos token.Pos, verb string) bool {
	p := fset.Position(pos)
	hit := false
	for _, d := range a.Lines[lineKey(p.Filename, p.Line)] {
		if d.Verb == verb {
			a.markUsed(d)
			hit = true
		}
	}
	return hit
}

// TypeDirective returns the first directive with verb on the named type's
// object, if any.
func (a *Annotations) TypeDirective(obj types.Object, verb string) (*Directive, bool) {
	for _, d := range a.Types[obj] {
		if d.Verb == verb {
			return d, true
		}
	}
	return nil, false
}

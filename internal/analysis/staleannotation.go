package analysis

// StaleAnnotationAnalyzer closes the escape-hatch audit loop: every
// suppression directive (//next700:allowalloc, allowwait, allowabort,
// lockorder, locked, allowunbounded, allowretry) must have actually
// suppressed — or scoped out — at least one would-be finding of its owning
// analyzer during this run. A directive that fires on nothing is rot: the
// code it once excused has been fixed or deleted, and the annotation now
// only misleads readers into thinking the contract is still being waived.
//
// The pass must run after the analyzers it audits (analysis.All keeps it
// last); a directive is only judged when its owner actually ran, so a
// single-analyzer corpus run does not call every other verb stale. There is
// deliberately no escape hatch for this analyzer — a stale suppression is
// deleted, not suppressed.
var StaleAnnotationAnalyzer = &Analyzer{
	Name: "staleannotation",
	Doc:  "every //next700: suppression must still suppress a finding; stale ones must be deleted",
	Run:  runStaleAnnotation,
}

func runStaleAnnotation(pass *Pass) error {
	prog := pass.Prog
	ann := prog.Annotations()
	for _, d := range ann.All {
		if !suppressionVerbs[d.Verb] {
			continue // markers and claims (hotpath, cachepad) are not audited
		}
		if !prog.Ran(verbOwner[d.Verb]) {
			continue // owner didn't look; can't judge
		}
		if ann.Used(d) {
			continue
		}
		pass.Reportf(d.Pos, "stale suppression //next700:%s(%s): the %s analyzer reported nothing here; the waived violation is gone — delete the annotation", d.Verb, d.Arg, verbOwner[d.Verb])
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedWaitAnalyzer enforces the deadline contract introduced with the
// overload work: inside internal/cc, internal/wal, and internal/core, no
// code may wait without a bound. Flagged constructs:
//
//   - sync.Cond.Wait — use the deadline-aware timed variant (the 2PL
//     waitDeadline pattern: AfterFunc broadcast + deadline re-check)
//   - sync.(RW)Mutex.Lock / RLock calls with no matching Unlock in the same
//     function body ("escaping" locks — these are transaction-duration
//     acquisitions that can block behind a stalled peer indefinitely; the
//     conformant pattern is TryLock + deadline-budgeted backoff)
//   - bare channel receives outside select (a select with several cases or
//     a default is a scheduling choice, not an unbounded wait)
//
// Escape hatch: //next700:allowwait(reason) on the function or line, for
// audited shutdown joins and test-only paths.
var BoundedWaitAnalyzer = &Analyzer{
	Name:         "boundedwait",
	Doc:          "blocking waits in internal/{cc,wal,core} must be deadline-aware",
	SuppressVerb: "allowwait",
	Run:          runBoundedWait,
}

// boundedWaitScope lists the package-path suffixes (relative to the module
// root) the contract applies to.
var boundedWaitScope = []string{"internal/cc", "internal/wal", "internal/core"}

func inScope(prog *Program, pkg *Package, scope []string) bool {
	rel := strings.TrimPrefix(pkg.Path, prog.ModulePath)
	rel = strings.TrimPrefix(rel, "/")
	for _, s := range scope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

func runBoundedWait(pass *Pass) error {
	prog := pass.Prog
	for _, node := range prog.Graph().Nodes {
		if !inScope(prog, node.Pkg, boundedWaitScope) {
			continue
		}
		checkWaits(pass, node)
	}
	return nil
}

func checkWaits(pass *Pass, node *FuncNode) {
	body := node.Body()
	if body == nil {
		return
	}
	prog := pass.Prog
	info := node.Pkg.Info
	// Suppression (line- and declaration-level allowwait) is applied
	// centrally by Pass.Reportf, which also feeds the staleannotation pass.
	report := func(pos token.Pos, format string, args ...interface{}) {
		pass.Reportf(pos, format, args...)
	}

	// First pass: collect lock/unlock call sites on sync mutexes, keyed by
	// the rendered receiver expression, so escaping locks can be detected.
	type lockSite struct {
		pos  token.Pos
		call string // "Lock", "RLock", "Unlock", "RUnlock", "TryLock", ...
	}
	locksByRecv := make(map[string][]lockSite)
	selectDepth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if n != node.Lit {
				return false // literals are separate analysis roots
			}
		case *ast.SelectStmt:
			selectDepth++
			for _, clause := range x.Body.List {
				ast.Inspect(clause, walk)
			}
			selectDepth--
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && selectDepth == 0 {
				report(x.Pos(), "unbounded channel receive; select with a deadline/stop case or annotate //next700:allowwait(reason)")
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			recv := methodRecvNamed(fn)
			if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
				return true
			}
			switch recv.Obj().Name() {
			case "Cond":
				if fn.Name() == "Wait" {
					report(x.Pos(), "unbounded sync.Cond.Wait; use the deadline-aware timed wait (AfterFunc broadcast + deadline re-check) or annotate //next700:allowwait(reason)")
				}
			case "Mutex", "RWMutex":
				key := exprString(prog.Fset, sel.X)
				locksByRecv[key] = append(locksByRecv[key], lockSite{x.Pos(), fn.Name()})
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	// An acquisition with no release on the same receiver anywhere in the
	// body (defer included — ast.Inspect saw those calls too) escapes the
	// function: it is a transaction-duration blocking acquire.
	for recv, sites := range locksByRecv {
		released := false
		for _, s := range sites {
			if s.call == "Unlock" || s.call == "RUnlock" {
				released = true
			}
		}
		if released {
			continue
		}
		for _, s := range sites {
			if s.call == "Lock" || s.call == "RLock" {
				report(s.pos, "blocking %s.%s() escapes the function with no deadline bound; use TryLock with deadline-budgeted backoff or annotate //next700:allowwait(reason)", recv, s.call)
			}
		}
	}
}

// methodRecvNamed returns the named type of fn's receiver (pointer
// dereferenced), or nil for non-methods.
func methodRecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncNode is one analyzable function body: a declared function or method,
// or a function literal (literals are their own roots — a closure's body is
// not inlined into its enclosing function, which matters for lock-order
// analysis where e.g. a timer callback runs on a different goroutine).
type FuncNode struct {
	// Key uniquely identifies the function across packages; for declared
	// functions it is types.Func.FullName of the Origin, for literals a
	// synthetic "lit@file:line:col".
	Key string
	// Obj is the declared function's object (nil for literals).
	Obj *types.Func
	// Decl / Lit hold the syntax (exactly one is non-nil).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Pkg is the declaring package.
	Pkg *Package
	// Callees are resolved static call edges, in source order, including
	// CHA-expanded interface-method edges. Deduplicated per callee.
	Callees []*CallEdge
}

// CallEdge is one static call from a FuncNode.
type CallEdge struct {
	// Pos is the call site.
	Pos token.Pos
	// Callee is the in-program target, nil when the target is outside the
	// loaded program (its Obj is still recorded for identification).
	Callee *FuncNode
	// Obj is the target function object (nil for calls through function
	// values that CHA cannot resolve).
	Obj *types.Func
	// ViaInterface marks edges added by class-hierarchy expansion of an
	// interface method call (the callee is a possible, not certain, target).
	ViaInterface bool
}

// Body returns the function's body block (may be nil for bodyless decls).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the function's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Name returns a human-readable name for diagnostics.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return relFullName(n.Obj, n.Pkg)
	}
	return "function literal"
}

// relFullName renders fn like types.Func.FullName but with the module path
// stripped for readability ((next700/internal/cc.*twopl).acquire →
// (cc.*twopl).acquire is too lossy; keep package-qualified short form).
func relFullName(fn *types.Func, pkg *Package) string {
	name := fn.FullName()
	if pkg != nil && pkg.Types != nil {
		// Trim "modulepath/" prefixes inside the rendered name.
		if i := strings.LastIndex(pkg.Path, "/"); i >= 0 {
			name = strings.ReplaceAll(name, pkg.Path[:i+1], "")
		}
	}
	return name
}

// CallGraph is the static call graph over every function body in the loaded
// program, with interface-method calls to in-program interfaces expanded to
// all in-program implementations (class hierarchy analysis).
type CallGraph struct {
	// Nodes maps FuncNode.Key to the node.
	Nodes map[string]*FuncNode
	// ByObj maps a declared function's Origin object to its node.
	ByObj map[*types.Func]*FuncNode
}

// Graph builds (once) and returns the program's call graph.
func (p *Program) Graph() *CallGraph {
	if p.graph != nil {
		return p.graph
	}
	g := &CallGraph{
		Nodes: make(map[string]*FuncNode),
		ByObj: make(map[*types.Func]*FuncNode),
	}

	// Pass 1: collect nodes for every declared function and function
	// literal in the program.
	for _, pkg := range p.Packages {
		for _, file := range pkg.Files {
			pkg := pkg
			ast.Inspect(file, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
					if obj == nil {
						return true
					}
					node := &FuncNode{
						Key:  obj.Origin().FullName(),
						Obj:  obj.Origin(),
						Decl: fn,
						Pkg:  pkg,
					}
					g.Nodes[node.Key] = node
					g.ByObj[obj.Origin()] = node
				case *ast.FuncLit:
					pos := p.Fset.Position(fn.Pos())
					node := &FuncNode{
						Key: fmt.Sprintf("lit@%s:%d:%d", pos.Filename, pos.Line, pos.Column),
						Lit: fn,
						Pkg: pkg,
					}
					g.Nodes[node.Key] = node
				}
				return true
			})
		}
	}

	// CHA preparation: map every in-program interface method to the set of
	// in-program concrete methods that can satisfy it.
	impls := g.buildCHA(p)

	// Pass 2: add call edges.
	for _, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		pkg := node.Pkg
		seen := make(map[string]bool)
		addEdge := func(pos token.Pos, obj *types.Func, callee *FuncNode, viaIface bool) {
			key := "?"
			if callee != nil {
				key = callee.Key
			} else if obj != nil {
				key = obj.FullName()
			} else {
				key = fmt.Sprintf("indirect@%d", pos)
			}
			if seen[key] {
				return
			}
			seen[key] = true
			node.Callees = append(node.Callees, &CallEdge{Pos: pos, Callee: callee, Obj: obj, ViaInterface: viaIface})
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != node.Lit {
				// Literal bodies are separate roots; but record an edge from
				// the enclosing function so transitive hot-path analysis
				// follows closures that are defined (and typically invoked
				// or deferred) here.
				pos := p.Fset.Position(n.Pos())
				key := fmt.Sprintf("lit@%s:%d:%d", pos.Filename, pos.Line, pos.Column)
				addEdge(n.Pos(), nil, g.Nodes[key], false)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg.Info, call)
			if callee == nil {
				return true
			}
			callee = callee.Origin()
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					if types.IsInterface(s.Recv().Underlying()) {
						// Interface method call: expand via CHA when the
						// interface is in-program; otherwise record the
						// abstract callee only.
						for _, m := range impls[callee] {
							addEdge(call.Pos(), m.Obj, m, true)
						}
						addEdge(call.Pos(), callee, g.ByObj[callee], true)
						return true
					}
				}
			}
			addEdge(call.Pos(), callee, g.ByObj[callee], false)
			return true
		})
	}
	p.graph = g
	return g
}

// calleeFunc resolves the called function object for static and method
// calls, including generic instantiations (f[T](...)); nil for calls
// through function-typed values and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return funcOfExpr(info, call.Fun)
}

func funcOfExpr(info *types.Info, e ast.Expr) *types.Func {
	switch fun := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr:
		// Generic instantiation; an ordinary index into a func-valued
		// container resolves to a *types.Var and stays nil.
		return funcOfExpr(info, fun.X)
	case *ast.IndexListExpr:
		return funcOfExpr(info, fun.X)
	}
	return nil
}

// buildCHA maps every interface method declared in the program to the
// concrete in-program methods implementing it.
func (g *CallGraph) buildCHA(p *Program) map[*types.Func][]*FuncNode {
	// Collect in-program interfaces and named concrete types.
	type ifaceRec struct {
		iface *types.Interface
	}
	var ifaces []*types.Interface
	var concretes []types.Type
	for _, pkg := range p.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
			} else {
				concretes = append(concretes, named, types.NewPointer(named))
			}
		}
	}
	impls := make(map[*types.Func][]*FuncNode)
	for _, iface := range ifaces {
		for _, ct := range concretes {
			if !types.Implements(ct, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ct, true, im.Pkg(), im.Name())
				m, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				node := g.ByObj[m.Origin()]
				if node == nil {
					continue
				}
				found := false
				for _, existing := range impls[im.Origin()] {
					if existing == node {
						found = true
						break
					}
				}
				if !found {
					impls[im.Origin()] = append(impls[im.Origin()], node)
				}
			}
		}
	}
	return impls
}

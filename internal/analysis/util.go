package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// exprString renders an expression as compact source text, for use as a
// syntactic identity key (lock receivers) and in diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

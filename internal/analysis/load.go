package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Module     *struct {
		Path string
	}
	Error *struct {
		Err string
	}
	DepOnly bool
}

// Load enumerates, parses, and type-checks the packages matched by patterns
// (e.g. "./...") in the module rooted at or containing dir. Dependencies are
// imported from gc export data (compiled as a side effect of the enumeration),
// so no network or module cache beyond the build cache is needed.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One invocation produces both the target list and the export-data map
	// for every dependency: -deps includes the transitive closure, -export
	// forces compilation so .Export is populated, -e tolerates packages
	// with type errors (the dirty corpora are expected to be broken in
	// controlled ways, but export data is still demanded for deps).
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Module,Error,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listedPackage
	exportFor := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			exportFor[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			targets = append(targets, &p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v in %s", patterns, dir)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	prog := &Program{Fset: token.NewFileSet()}
	if targets[0].Module != nil {
		prog.ModulePath = targets[0].Module.Path
	}

	// The gc importer resolves dependency packages from the export files go
	// list just reported; source-level targets are checked below in
	// dependency order and take precedence via the cache inside the
	// importer wrapper.
	checked := make(map[string]*types.Package)
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	base := importer.ForCompiler(prog.Fset, "gc", lookup)
	imp := &programImporter{base: base, checked: checked}

	// Targets must be checked in dependency order so intra-module imports
	// resolve to the source-checked package, keeping annotation positions
	// meaningful. go list -deps already emits dependencies first, and
	// targets preserved that order before sorting — recompute it here by
	// simple fixpoint over import errors instead of threading the original
	// order through: check packages whose intra-target imports are done.
	remaining := append([]*listedPackage(nil), targets...)
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t.ImportPath] = true
	}
	for len(remaining) > 0 {
		progress := false
		var next []*listedPackage
		for _, lp := range remaining {
			if !depsReady(lp, targetSet, checked, prog.Fset) {
				next = append(next, lp)
				continue
			}
			pkg, err := checkOne(prog.Fset, lp, imp)
			if err != nil {
				return nil, err
			}
			checked[lp.ImportPath] = pkg.Types
			prog.Packages = append(prog.Packages, pkg)
			progress = true
		}
		if !progress {
			// Import cycle or unparseable dependency: check the rest in
			// listed order and let type errors surface naturally.
			for _, lp := range next {
				pkg, err := checkOne(prog.Fset, lp, imp)
				if err != nil {
					return nil, err
				}
				checked[lp.ImportPath] = pkg.Types
				prog.Packages = append(prog.Packages, pkg)
			}
			next = nil
		}
		remaining = next
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// depsReady reports whether every intra-target import of lp is already
// source-checked (exports of non-target deps are always available).
func depsReady(lp *listedPackage, targetSet map[string]bool, checked map[string]*types.Package, fset *token.FileSet) bool {
	for _, gf := range lp.GoFiles {
		src, err := parser.ParseFile(fset, filepath.Join(lp.Dir, gf), nil, parser.ImportsOnly)
		if err != nil {
			continue
		}
		for _, spec := range src.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if targetSet[path] && checked[path] == nil {
				return false
			}
		}
	}
	return true
}

// programImporter serves source-checked target packages from the cache and
// everything else from gc export data.
type programImporter struct {
	base    types.Importer
	checked map[string]*types.Package
}

func (pi *programImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := pi.checked[path]; ok {
		return pkg, nil
	}
	return pi.base.Import(path)
}

func checkOne(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	if lp.Error != nil && len(lp.GoFiles) == 0 {
		return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
	}
	var files []*ast.File
	for _, gf := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", gf, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect what checks; analyzers tolerate partial info
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

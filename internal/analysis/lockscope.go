package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScopeAnalyzer bounds the work done inside engine critical sections. A
// may-analysis over the CFG tracks which lock classes ("Type.field", the
// same identity lockorder uses) are possibly held at each program point in
// internal/cc, internal/wal, and internal/core; while any is held, the
// following are forbidden — each one either extends the critical section by
// an unbounded amount (I/O, blocking ops, callbacks that may re-enter) or
// puts allocator/GC work under the hottest mutexes in the engine:
//
//   - allocation: make/new, slice/map composite literals, pointer-to-composite
//     literals, and closure creation
//   - goroutine launches (the new goroutine may immediately contend on the
//     lock being held, inverting the handoff)
//   - blocking channel operations (sends and bare receives; select
//     communications are a scheduling choice and are exempt, as is
//     sync.Cond.Wait, which releases its associated mutex)
//   - time.Sleep and durability waits (WaitDurable*)
//   - device/WAL I/O: calls into package os and calls through the wal.Device
//     interface (or a concrete type satisfying it)
//   - indirect calls through function values — user callbacks whose cost and
//     locking behavior the engine cannot see
//
// The analysis is per-function: helpers that run with a caller's lock held
// (the *Locked suffix convention) are not charged with the caller's held
// set. The runtime contention gates cover that gap.
//
// Escape hatch: //next700:locked(class: reason) on the offending line or the
// function, for audited sites (e.g. a cold recovery path that snapshots
// under the partition mutex).
var LockScopeAnalyzer = &Analyzer{
	Name:         "lockscope",
	Doc:          "no allocation, blocking, I/O, or callbacks while engine mutexes are held",
	SuppressVerb: "locked",
	Run:          runLockScope,
}

var lockScopeScope = []string{"internal/cc", "internal/wal", "internal/core"}

func runLockScope(pass *Pass) error {
	prog := pass.Prog
	deviceIface := walDeviceInterface(prog)
	for _, node := range prog.Graph().Nodes {
		if !inScope(prog, node.Pkg, lockScopeScope) {
			continue
		}
		checkLockScope(pass, node, deviceIface)
	}
	return nil
}

// walDeviceInterface resolves the wal.Device interface type, if the package
// is part of the program.
func walDeviceInterface(prog *Program) *types.Interface {
	for _, pkg := range prog.Packages {
		if !strings.HasSuffix(pkg.Path, "internal/wal") {
			continue
		}
		if obj := pkg.Types.Scope().Lookup("Device"); obj != nil {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

const heldPrefix = "held:"

func heldClasses(f Facts) []string {
	var out []string
	for k := range f {
		if strings.HasPrefix(k, heldPrefix) {
			out = append(out, strings.TrimPrefix(k, heldPrefix))
		}
	}
	sort.Strings(out)
	return out
}

func checkLockScope(pass *Pass, node *FuncNode, deviceIface *types.Interface) {
	body := node.Body()
	if body == nil {
		return
	}
	info := node.Pkg.Info
	cfg := BuildCFG(body)

	// Transfer: Lock/RLock (and the Try variants' success paths) add the
	// class, Unlock/RUnlock remove it. A deferred unlock is not a release at
	// the defer statement — the lock stays held to function exit, so a
	// defer-unlock inside a loop correctly carries the held class around the
	// back edge.
	spec := &FlowSpec{
		May: true,
		Transfer: func(f Facts, n ast.Node) {
			if _, ok := n.(*ast.DeferStmt); ok {
				return
			}
			inspectPoint(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.DeferStmt); ok {
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, class := lockCall(info, call)
				if class == "" {
					return true
				}
				switch kind {
				case "Lock", "RLock", "TryLock", "TryRLock":
					f[heldPrefix+class] = true
				case "Unlock", "RUnlock":
					delete(f, heldPrefix+class)
				}
				return true
			})
		},
	}
	res := SolveForward(cfg, spec)

	res.Simulate(func(f Facts, b *Block, n ast.Node) {
		held := heldClasses(f)
		if len(held) == 0 {
			return
		}
		holding := strings.Join(held, ", ")
		report := func(pos token.Pos, what string) {
			pass.Reportf(pos, "%s while %s held; move it outside the critical section or annotate //next700:locked(%s: reason)", what, holding, held[0])
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			// Deferred calls run at function exit; the defer statement itself
			// performs no work under the lock (straight-line defers are
			// open-coded since go1.14 — hotpath covers defer-in-loop).
			return
		}
		inspectPoint(n, func(x ast.Node) bool {
			switch y := x.(type) {
			case *ast.DeferStmt:
				return false
			case *ast.FuncLit:
				report(y.Pos(), "closure allocation")
			case *ast.GoStmt:
				report(y.Pos(), "goroutine launch")
			case *ast.SendStmt:
				if !b.SelectComm {
					report(y.Pos(), "blocking channel send")
				}
			case *ast.UnaryExpr:
				if y.Op == token.ARROW && !b.SelectComm {
					report(y.Pos(), "blocking channel receive")
				}
				if y.Op == token.AND {
					if _, ok := ast.Unparen(y.X).(*ast.CompositeLit); ok {
						report(y.Pos(), "pointer-to-composite allocation")
					}
				}
			case *ast.CompositeLit:
				if tv, ok := info.Types[y]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice:
						report(y.Pos(), "slice-literal allocation")
					case *types.Map:
						report(y.Pos(), "map-literal allocation")
					}
				}
			case *ast.CallExpr:
				checkLockedCall(pass, node, y, deviceIface, report)
			}
			return true
		})
	})
}

// checkLockedCall classifies one call made while locks are held.
func checkLockedCall(pass *Pass, node *FuncNode, call *ast.CallExpr, deviceIface *types.Interface, report func(token.Pos, string)) {
	info := node.Pkg.Info
	// Builtins: make/new allocate; the rest (len, append into existing cap,
	// ...) are not charged here.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "allocation (make)")
			case "new":
				report(call.Pos(), "allocation (new)")
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		// An indirect call through a func value: a caller-supplied callback
		// (sequencer hooks, visitors) whose cost the engine cannot bound.
		// A named closure declared in this same body (writeImage, deadStream)
		// is engine code, not a callback — exempt.
		if localClosureCall(info, node, call) {
			return
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
			if _, sig := tv.Type.Underlying().(*types.Signature); sig {
				report(call.Pos(), "indirect call through a function value (caller-supplied callback)")
			}
		}
		return
	}

	// Mutex operations themselves are the subject of lockorder, not here.
	if kind, _ := lockCall(info, call); kind != "" {
		return
	}

	full := fn.Origin().FullName()
	switch full {
	case "time.Sleep":
		report(call.Pos(), "time.Sleep")
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "os" {
		report(call.Pos(), "os."+objOwnerName(fn)+fn.Name()+" device I/O")
		return
	}
	if strings.HasPrefix(fn.Name(), "WaitDurable") {
		report(call.Pos(), "durability wait "+fn.Name())
		return
	}
	// Device I/O: a method invoked on wal.Device (interface dispatch) or on
	// a concrete type implementing it, restricted to the interface's own
	// method set (Write/Sync).
	if deviceIface != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recvT := sig.Recv().Type()
			if hasMethod(deviceIface, fn.Name()) &&
				(types.Implements(recvT, deviceIface) || types.Implements(types.NewPointer(recvT), deviceIface)) {
				report(call.Pos(), "wal.Device."+fn.Name()+" device I/O")
			}
		}
	}
}

// localClosureCall reports whether call invokes a func value bound to a
// variable declared inside this function's own body — a named local closure.
// Parameters (including func-typed ones) are declared in the signature,
// outside the body span, so caller-supplied callbacks stay flagged.
func localClosureCall(info *types.Info, node *FuncNode, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	body := node.Body()
	return body != nil && v.Pos() >= body.Pos() && v.Pos() < body.End()
}

func hasMethod(iface *types.Interface, name string) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// objOwnerName renders "Type." for methods, "" for package functions.
func objOwnerName(fn *types.Func) string {
	if named := methodRecvNamed(fn); named != nil {
		return named.Obj().Name() + "."
	}
	return ""
}

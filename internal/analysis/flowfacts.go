package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// condFacts encodes branch assumptions as dataflow facts. Each Assumption
// (a condition expression plus the truth value the taken edge implies) is
// interned under a stable string key "assume:<t|f>:<rendered expr>"; a side
// table keeps the original expression, its polarity, and the set of objects
// it mentions so facts can be killed when any mentioned variable is
// reassigned. One condFacts instance serves one function's solve.
type condFacts struct {
	fset  *token.FileSet
	info  *types.Info
	table map[string]*condFact
}

type condFact struct {
	cond     ast.Expr
	value    bool
	mentions map[types.Object]bool
}

func newCondFacts(fset *token.FileSet, info *types.Info) *condFacts {
	return &condFacts{fset: fset, info: info, table: make(map[string]*condFact)}
}

// assume registers the assumption and adds its fact. Used as FlowSpec.Assume.
func (c *condFacts) assume(f Facts, a Assumption) {
	key := fmt.Sprintf("assume:%t:%s", a.Value, exprString(c.fset, a.Cond))
	if _, ok := c.table[key]; !ok {
		c.table[key] = &condFact{cond: a.Cond, value: a.Value, mentions: mentionedObjects(c.info, a.Cond)}
	}
	f[key] = true
}

// killAssigned drops every assumption fact that mentions a variable this
// node assigns. Mutation through pointers or callee side effects is not
// modeled; the analyzers using condFacts only trust assumptions about
// locally scrutinized values (err, deadline params) where that is sound
// enough in practice.
func (c *condFacts) killAssigned(f Facts, n ast.Node) {
	var targets []ast.Expr
	switch x := n.(type) {
	case *ast.AssignStmt:
		targets = x.Lhs
	case *ast.IncDecStmt:
		targets = []ast.Expr{x.X}
	case *ast.RangeStmt:
		if x.Key != nil {
			targets = append(targets, x.Key)
		}
		if x.Value != nil {
			targets = append(targets, x.Value)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						targets = append(targets, name)
					}
				}
			}
		}
	default:
		return
	}
	var killed map[types.Object]bool
	for _, t := range targets {
		if obj := rootObject(c.info, t); obj != nil {
			if killed == nil {
				killed = make(map[types.Object]bool)
			}
			killed[obj] = true
		}
	}
	if killed == nil {
		return
	}
	for key := range f {
		cf, ok := c.table[key]
		if !ok {
			continue
		}
		for obj := range killed {
			if cf.mentions[obj] {
				delete(f, key)
				break
			}
		}
	}
}

// inForce returns the registered assumption facts present in f, in
// deterministic (source position) order.
func (c *condFacts) inForce(f Facts) []*condFact {
	var out []*condFact
	for key := range f {
		if cf, ok := c.table[key]; ok {
			out = append(out, cf)
		}
	}
	// Sort by condition position, then polarity, for deterministic messages.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.cond.Pos() < b.cond.Pos() || (a.cond.Pos() == b.cond.Pos() && !a.value && b.value) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// mentionedObjects collects every object referenced by identifiers inside e.
func mentionedObjects(info *types.Info, e ast.Expr) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// rootObject resolves an assignment target to the object of its base
// identifier: x → x, x.f → x, x[i] → x, *p → p.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TerminalAbortAnalyzer guards the retry loops: a transaction abort carrying
// a *terminal* class — deadline exceeded, admission shed, partition
// unavailable, user abort, livelock budget exhausted — must surface to the
// caller, never feed back into a retry. Concretely, for every `continue` in
// a retry loop the analyzer inspects the branch assumptions (must-facts: the
// conditions that hold on every path to the continue) that mention an
// error-typed value:
//
//   - if any assumption establishes errors.Is(err, <terminal class>), the
//     continue retries a terminal abort — reported always;
//   - otherwise the continue must be post-dominated by a positive transient
//     classification: fault.IsTransient(err) true, errors.Is against a
//     non-terminal class true, or err proven nil. A continue whose guard
//     merely mentions an error without classifying it (the classic
//     `if err != nil { continue }` retry-everything bug) is reported.
//
// Continues with no error-derived guard at all (loop bookkeeping, scan
// filters on non-error values) are out of scope. Assumptions die when a
// mentioned variable is reassigned, so a classification of the previous
// attempt's error never vouches for the next.
//
// Escape hatch: //next700:allowretry(reason) on the line or function, for
// audited loops (e.g. a chaos harness that deliberately replays terminal
// aborts).
var TerminalAbortAnalyzer = &Analyzer{
	Name:         "terminalabort",
	Doc:          "terminal abort classes must not flow into retry loops; retry decisions need a transient classification",
	SuppressVerb: "allowretry",
	Run:          runTerminalAbort,
}

var terminalAbortScope = []string{
	"internal/core", "internal/harness", "internal/admission", "internal/torture",
}

// terminalClasses are the abort-class sentinels that must never be retried:
// the deadline family (retrying cannot un-expire a deadline), admission
// shedding (retrying defeats the shed), partition unavailability (the retry
// storms a quarantined partition), user aborts (retrying overrides caller
// intent), and livelock (the retry budget is already exhausted).
var terminalClasses = map[string]bool{
	"ErrDeadlineExceeded":     true,
	"ErrWaitDeadline":         true,
	"ErrShed":                 true,
	"ErrPartitionUnavailable": true,
	"ErrUserAbort":            true,
	"ErrLivelock":             true,
}

func runTerminalAbort(pass *Pass) error {
	prog := pass.Prog
	for _, node := range prog.Graph().Nodes {
		if !inScope(prog, node.Pkg, terminalAbortScope) {
			continue
		}
		checkTerminalAbort(pass, node)
	}
	return nil
}

func checkTerminalAbort(pass *Pass, node *FuncNode) {
	body := node.Body()
	if body == nil {
		return
	}
	prog := pass.Prog
	info := node.Pkg.Info
	cfg := BuildCFG(body)

	cf := newCondFacts(prog.Fset, info)
	spec := &FlowSpec{
		May:      false, // must: the guard has to hold on every path in
		Assume:   cf.assume,
		Transfer: cf.killAssigned,
	}
	res := SolveForward(cfg, spec)

	res.Simulate(func(f Facts, b *Block, n ast.Node) {
		br, ok := n.(*ast.BranchStmt)
		if !ok {
			return
		}
		involved, classified := false, false
		var terminal string
		for _, a := range cf.inForce(f) {
			if !mentionsError(info, a.cond) {
				continue
			}
			involved = true
			switch k, class := classifyGuard(info, a); k {
			case guardTerminal:
				if terminal == "" {
					terminal = class
				}
			case guardTransient:
				classified = true
			}
		}
		if terminal != "" {
			pass.Reportf(br.Pos(), "terminal abort class %s flows into a retry: this continue re-runs work the %s classification already condemned; surface the error to the caller or annotate //next700:allowretry(reason)", terminal, terminal)
			return
		}
		if involved && !classified {
			pass.Reportf(br.Pos(), "retry decision without a transient classification: guard this continue with fault.IsTransient(err) or errors.Is against a transient class, or annotate //next700:allowretry(reason)")
		}
	})
}

type guardKind int

const (
	guardNeutral guardKind = iota
	guardTransient
	guardTerminal
)

// classifyGuard interprets one error-mentioning assumption:
//
//	IsTransient(err)==true                → transient (positive classification)
//	errors.Is(err, NonTerminal)==true     → transient-equivalent (a specific
//	                                        non-terminal class was matched)
//	errors.Is(err, Terminal)==true        → terminal flow
//	err==nil true / err!=nil false        → err proven nil (benign)
//
// Everything else (err != nil, negated classifications, ...) is neutral: it
// involves the error without classifying it.
func classifyGuard(info *types.Info, a *condFact) (guardKind, string) {
	switch x := ast.Unparen(a.cond).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, x)
		if fn == nil {
			return guardNeutral, ""
		}
		if strings.Contains(fn.Name(), "Transient") {
			if a.value {
				return guardTransient, ""
			}
			return guardNeutral, ""
		}
		if fn.Origin().FullName() == "errors.Is" && len(x.Args) == 2 {
			sentinel := sentinelName(info, x.Args[1])
			if sentinel == "" {
				return guardNeutral, ""
			}
			if a.value {
				if terminalClasses[sentinel] {
					return guardTerminal, sentinel
				}
				return guardTransient, ""
			}
			return guardNeutral, ""
		}
	case *ast.BinaryExpr:
		// err == nil (true) or err != nil (false): the error is proven nil.
		nilOn := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && id.Name == "nil" && info.Types[e].IsNil()
		}
		if nilOn(x.X) || nilOn(x.Y) {
			switch {
			case x.Op.String() == "==" && a.value, x.Op.String() == "!=" && !a.value:
				return guardTransient, "" // proven nil: nothing terminal retried
			}
		}
	}
	return guardNeutral, ""
}

// sentinelName resolves an errors.Is target expression to the declared
// sentinel variable name ("ErrShed"), or "".
func sentinelName(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			return obj.Name()
		}
	case *ast.SelectorExpr:
		if obj := info.ObjectOf(x.Sel); obj != nil {
			return obj.Name()
		}
	}
	return ""
}

// mentionsError reports whether any sub-expression of e has an error type.
func mentionsError(info *types.Info, e ast.Expr) bool {
	errType := types.Universe.Lookup("error").Type()
	iface := errType.Underlying().(*types.Interface)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := info.Types[ex]
		if !ok || tv.Type == nil || tv.IsType() {
			return true
		}
		if types.Implements(tv.Type, iface) || types.Identical(tv.Type, errType) {
			found = true
			return false
		}
		return true
	})
	return found
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeadlineFlowAnalyzer enforces the deadline-propagation contract with
// branch sensitivity. Two rules:
//
//  1. On hot paths (functions reachable from a //next700:hotpath root),
//     calls to a blocking method that has a deadline-bounded sibling —
//     method M where the same receiver also defines M+"Until" — must either
//     be the Until variant or sit on a branch where the deadline was proven
//     zero (the explicit no-deadline opt-out, e.g. `if dl != 0 { ...Until
//     } else { ... }`). The pairing convention makes the rule self-extending:
//     introducing FooUntil next to Foo puts every hot Foo call under it.
//
//  2. A function that receives a deadline parameter (named dl/deadline/
//     *Deadline) must not drop it before the blocking site: an unbounded-
//     variant call is flagged, and a bounded (Until) call must mention the
//     parameter — or a value derived from it — in its arguments. Derivation
//     is tracked by assignment taint.
//
// The deadline-zero proof is a must-analysis over branch assumptions:
// `dl != 0` false, `dl == 0` true, `dl > 0` false, and `dl <= 0` true all
// establish "no deadline in force", and the fact dies if any mentioned
// variable is reassigned.
//
// Escape hatch: //next700:allowunbounded(reason) on the line or function,
// for audited unbounded waits (shutdown joins, test harness plumbing).
var DeadlineFlowAnalyzer = &Analyzer{
	Name:         "deadlineflow",
	Doc:          "blocking calls on hot paths must use deadline-bounded variants; deadline params must reach the blocking site",
	SuppressVerb: "allowunbounded",
	Run:          runDeadlineFlow,
}

func runDeadlineFlow(pass *Pass) error {
	prog := pass.Prog
	ann := prog.Annotations()
	graph := prog.Graph()

	// Hot-reachable set: BFS from every //next700:hotpath root, same
	// traversal hotpath uses (function-literal callees included; no
	// allowalloc pruning — an allocation waiver is not a deadline waiver).
	hot := make(map[*FuncNode]bool)
	var queue []*FuncNode
	for fn := range ann.Funcs {
		if ann.FuncHas(fn, "hotpath") && graph.ByObj[fn] != nil {
			queue = append(queue, graph.ByObj[fn])
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if hot[n] {
			continue
		}
		hot[n] = true
		for _, e := range n.Callees {
			if e.Callee != nil && !hot[e.Callee] {
				queue = append(queue, e.Callee)
			}
		}
	}

	for _, node := range graph.Nodes {
		dlParam := deadlineParam(node)
		if !hot[node] && dlParam == nil {
			continue
		}
		checkDeadlineFlow(pass, node, hot[node], dlParam)
	}
	return nil
}

// deadlineParam returns the parameter carrying the caller's deadline, if
// node declares one: a parameter whose name is "dl" or contains "deadline"
// (case-insensitive) with an integer or time.Time type.
func deadlineParam(node *FuncNode) *types.Var {
	obj := node.Obj
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		name := strings.ToLower(p.Name())
		if name != "dl" && !strings.Contains(name, "deadline") {
			continue
		}
		switch t := p.Type().Underlying().(type) {
		case *types.Basic:
			if t.Info()&types.IsInteger != 0 {
				return p
			}
		case *types.Struct:
			if named, ok := p.Type().(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time" {
				return p
			}
		}
	}
	return nil
}

func checkDeadlineFlow(pass *Pass, node *FuncNode, onHotPath bool, dlParam *types.Var) {
	body := node.Body()
	if body == nil {
		return
	}
	prog := pass.Prog
	info := node.Pkg.Info
	cfg := BuildCFG(body)

	cf := newCondFacts(prog.Fset, info)
	spec := &FlowSpec{
		May:      false, // must: a guard counts only if it dominates the call
		Assume:   cf.assume,
		Transfer: cf.killAssigned,
	}
	res := SolveForward(cfg, spec)

	// Assignment taint for rule 2: values derived from the deadline
	// parameter, computed flow-insensitively to a fixpoint.
	tainted := map[types.Object]bool{}
	if dlParam != nil {
		tainted[dlParam] = true
		for changed := true; changed; {
			changed = false
			ast.Inspect(body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				rhsTainted := false
				for _, r := range as.Rhs {
					for obj := range mentionedObjects(info, r) {
						if tainted[obj] {
							rhsTainted = true
						}
					}
				}
				if !rhsTainted {
					return true
				}
				for _, l := range as.Lhs {
					if obj := rootObject(info, l); obj != nil && !tainted[obj] {
						tainted[obj] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	res.Simulate(func(f Facts, b *Block, n ast.Node) {
		noDeadline := false
		for _, a := range cf.inForce(f) {
			if impliesNoDeadline(prog.Fset, a) {
				noDeadline = true
				break
			}
		}
		inspectPoint(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			name := fn.Name()
			if strings.HasSuffix(name, "Until") {
				// Bounded variant: with a deadline parameter in scope, the
				// arguments must carry it (or a derived value).
				if dlParam == nil || noDeadline {
					return true
				}
				for _, arg := range call.Args {
					for obj := range mentionedObjects(info, arg) {
						if tainted[obj] {
							return true
						}
					}
				}
				pass.Reportf(call.Pos(), "deadline parameter %q is not threaded into %s; pass the deadline (or a value derived from it) or annotate //next700:allowunbounded(reason)", dlParam.Name(), name)
				return true
			}
			if !hasUntilSibling(fn) {
				return true
			}
			if noDeadline {
				return true // explicit deadline==0 opt-out branch
			}
			if dlParam != nil {
				pass.Reportf(call.Pos(), "deadline parameter %q dropped before blocking call %s; call %sUntil with it, guard with a deadline==0 check, or annotate //next700:allowunbounded(reason)", dlParam.Name(), name, name)
			} else if onHotPath {
				pass.Reportf(call.Pos(), "unbounded %s reachable from a //next700:hotpath root; call %sUntil with the transaction deadline, guard with a deadline==0 check, or annotate //next700:allowunbounded(reason)", name, name)
			}
			return true
		})
	})
}

// hasUntilSibling reports whether fn's receiver type (or, for package-level
// functions, its package scope) also defines fn.Name()+"Until" — marking fn
// as the unbounded member of a bounded/unbounded pair.
func hasUntilSibling(fn *types.Func) bool {
	name := fn.Name()
	if strings.HasSuffix(name, "Until") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name+"Until")
		_, isFunc := obj.(*types.Func)
		return isFunc
	}
	if fn.Pkg() != nil {
		_, isFunc := fn.Pkg().Scope().Lookup(name + "Until").(*types.Func)
		return isFunc
	}
	return false
}

// impliesNoDeadline reports whether the assumption proves a deadline-ish
// value is zero/absent: `dl != 0` false, `dl == 0` true, `dl > 0` false,
// `dl <= 0` true (and the operand-swapped spellings).
func impliesNoDeadline(fset *token.FileSet, a *condFact) bool {
	bin, ok := ast.Unparen(a.cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	var d ast.Expr
	var op token.Token
	switch {
	case isZeroLit(bin.Y) && isDeadlineExpr(fset, bin.X):
		d, op = bin.X, bin.Op
	case isZeroLit(bin.X) && isDeadlineExpr(fset, bin.Y):
		// Normalize to deadline-on-the-left by flipping the comparison.
		d = bin.Y
		switch bin.Op {
		case token.LSS:
			op = token.GTR // 0 < dl  ⇒  dl > 0
		case token.GTR:
			op = token.LSS
		case token.LEQ:
			op = token.GEQ
		case token.GEQ:
			op = token.LEQ
		default:
			op = bin.Op
		}
	default:
		return false
	}
	_ = d
	switch op {
	case token.NEQ:
		return !a.value
	case token.EQL:
		return a.value
	case token.GTR:
		return !a.value
	case token.LEQ:
		return a.value
	}
	return false
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// isDeadlineExpr reports whether the rendered expression names a deadline:
// "dl", "*.dl", or anything containing "deadline" (case-insensitive).
func isDeadlineExpr(fset *token.FileSet, e ast.Expr) bool {
	s := strings.ToLower(exprString(fset, e))
	return s == "dl" || strings.HasSuffix(s, ".dl") || strings.Contains(s, "deadline")
}

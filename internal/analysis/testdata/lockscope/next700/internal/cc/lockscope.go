// Package cc exercises the lockscope analyzer inside its scope
// (internal/cc): allocation, blocking ops, callbacks, and sleeps under a
// held mutex; the defer-unlock-in-loop back-edge case; the select and
// Cond.Wait exemptions; and both levels of the locked escape hatch.
package cc

import (
	"sync"
	"time"
)

type pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	buf  []byte
}

func (p *pool) allocUnderLock() {
	p.mu.Lock()
	p.buf = make([]byte, 64) // want `allocation \(make\) while pool\.mu held`
	p.mu.Unlock()
}

func (p *pool) sendUnderLock() {
	p.mu.Lock()
	p.ch <- 1 // want `blocking channel send while pool\.mu held`
	p.mu.Unlock()
}

func (p *pool) sleepUnderLock() {
	p.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while pool\.mu held`
	p.mu.Unlock()
}

func (p *pool) closureUnderLock() {
	p.mu.Lock()
	f := func() {} // want `closure allocation while pool\.mu held`
	f()            // clean: a named local closure is engine code, not a callback
	p.mu.Unlock()
}

func (p *pool) callbackUnderLock(cb func()) {
	p.mu.Lock()
	cb() // want `indirect call through a function value \(caller-supplied callback\) while pool\.mu held`
	p.mu.Unlock()
}

// deferInLoop is the canonical back-edge bug: the deferred unlocks all run
// at return, so after the first iteration the mutex stays held for the rest
// of the function — including the allocation after the loop.
func (p *pool) deferInLoop(n int) {
	for i := 0; i < n; i++ {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	p.buf = make([]byte, 8) // want `allocation \(make\) while pool\.mu held`
}

func (p *pool) allocAfterRelease() {
	p.mu.Lock()
	p.buf = p.buf[:0]
	p.mu.Unlock()
	p.buf = make([]byte, 32) // clean: the critical section is over
}

func (p *pool) selectUnderLock(stop chan struct{}) {
	p.mu.Lock()
	// clean: select communications are a scheduling choice, not a blocking
	// commitment to one channel.
	select {
	case p.ch <- 1:
	case <-stop:
	}
	p.mu.Unlock()
}

func (p *pool) condWait() {
	p.mu.Lock()
	p.cond.Wait() // clean: Cond.Wait releases its associated mutex while parked
	p.mu.Unlock()
}

// auditedAlloc is a whole-function escape hatch.
//
//next700:locked(pool.mu: corpus-audited cold path snapshot)
func (p *pool) auditedAlloc() {
	p.mu.Lock()
	p.buf = make([]byte, 16) // clean: function-level locked waiver
	p.mu.Unlock()
}

func (p *pool) lineAudited() {
	p.mu.Lock()
	p.buf = make([]byte, 16) //next700:locked(pool.mu: corpus-audited line)
	p.mu.Unlock()
}

// Package core exercises the terminalabort analyzer inside its scope
// (internal/core): terminal classes feeding a continue, the
// retry-everything bug, positive transient classifications, the proven-nil
// guard, non-error continues, and both levels of the allowretry hatch.
package core

import "errors"

var (
	// ErrShed matches the terminal class set by sentinel name.
	ErrShed = errors.New("shed")
	// ErrConflict is a transient class: retrying it is the point.
	ErrConflict = errors.New("conflict")
)

// IsTransient is the corpus stand-in for fault.IsTransient.
func IsTransient(err error) bool { return errors.Is(err, ErrConflict) }

func retryTerminal(work func() error) {
	for {
		err := work()
		if errors.Is(err, ErrShed) {
			continue // want `terminal abort class ErrShed flows into a retry`
		}
		return
	}
}

func retryUnclassified(work func() error) {
	for {
		err := work()
		if err != nil {
			continue // want `retry decision without a transient classification`
		}
		return
	}
}

func retryTransient(work func() error) {
	for {
		err := work()
		if IsTransient(err) {
			continue // clean: positive transient classification
		}
		return
	}
}

func retryNonTerminalClass(work func() error) {
	for {
		err := work()
		if errors.Is(err, ErrConflict) {
			continue // clean: a specific non-terminal class was matched
		}
		return
	}
}

func retryProvenNil(work func() error, n int) {
	for i := 0; i < n; i++ {
		err := work()
		if err == nil {
			continue // clean: the error is proven nil; nothing terminal retried
		}
		return
	}
}

func scanFilter(items []int) int {
	n := 0
	for _, it := range items {
		if it < 0 {
			continue // clean: no error-derived guard; out of scope
		}
		n++
	}
	return n
}

// retryAudited is a whole-function escape hatch.
//
//next700:allowretry(corpus: chaos harness deliberately replays terminal aborts)
func retryAudited(work func() error) {
	for {
		err := work()
		if errors.Is(err, ErrShed) {
			continue // clean: function-level allowretry
		}
		return
	}
}

func retryLineAudited(work func() error) {
	for {
		err := work()
		if errors.Is(err, ErrShed) {
			continue //next700:allowretry(corpus: audited replay)
		}
		return
	}
}

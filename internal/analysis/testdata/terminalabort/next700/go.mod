module next700

go 1.22

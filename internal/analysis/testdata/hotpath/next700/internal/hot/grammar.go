package hot

// Annotation-grammar problems are attributed to the verb's owning analyzer;
// unknown and malformed directives default to hotpath. The directives below
// are standalone comments (blank-line separated from declarations) so each
// is parsed exactly once.

//next700:bogus
// want:-1 `unknown next700 directive verb "bogus"`

//next700:HotPath(x)
// want:-1 `malformed next700 directive`

//next700:allowalloc
// want:-1 `next700:allowalloc requires a reason argument`

var keepVet = 0

// Package hot exercises the hotpath analyzer: every allocation construct,
// transitive descent through calls and interface dispatch, both escape
// hatches, and the annotation grammar.
package hot

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

type Sink interface {
	Push(v int)
}

type slowSink struct{ buf []int }

// Push is reached from Commit through the Sink interface (CHA expansion).
func (s *slowSink) Push(v int) {
	s.buf = append(s.buf, make([]int, 1)...) // want `hot path allocates: make`
}

var global []byte

//next700:hotpath
func Commit(n int, s Sink) {
	b := make([]byte, n) // want `hot path allocates: make`
	global = b
	_ = new(int)      // want `hot path allocates: new`
	_ = []int{1, 2}   // want `hot path allocates: slice literal`
	_ = map[int]int{} // want `hot path allocates: map literal`
	_ = &slowSink{}   // want `hot path allocates: pointer to composite literal escapes`
	s.Push(n)
}

//next700:hotpath
func Launch(f func()) {
	go f() // want `hot path allocates: goroutine launch`
}

//next700:hotpath
func Transitive() {
	helper()
}

func helper() {
	_ = errors.New("x") // want `errors\.New \(allocates a new error\) \(on hot path from hot\.Transitive\)`
}

// SortedWriteIndices mimics the engine's write-index path: reintroducing
// sort.Slice there must be caught (acceptance criterion).
//
//next700:hotpath
func SortedWriteIndices(idx []int) {
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] }) // want `sort\.Slice \(allocates a closure-backed sort\.Interface\)` `hot path allocates: closure creation`
}

//next700:hotpath
func Stamp(msg string) {
	_ = time.Now()   // want `time\.Now \(vDSO call`
	fmt.Println(msg) // want `fmt\.Println \(reflection-based formatting allocates\)`
	b := []byte(msg) // want `string<->\[\]byte conversion copies`
	_ = string(b)    // want `string<->\[\]byte conversion copies`
}

func take(x interface{}) {}

//next700:hotpath
func Box() {
	v := 7
	take(v) // want `argument boxed into interface parameter`
}

//next700:hotpath
func Convert(v int) {
	_ = any(v) // want `interface conversion boxes a value`
}

//next700:hotpath
func Defers(mu *sync.Mutex, n int) {
	mu.Lock()
	defer mu.Unlock() // clean: a straight-line defer is open-coded since go1.14
	for i := 0; i < n; i++ {
		defer release(mu) // want `defer inside a loop`
	}
}

func release(mu *sync.Mutex) {}

// Audited is a whole-function escape hatch: neither its body nor its callees
// are checked.
//
//next700:hotpath
//next700:allowalloc(corpus: audited slow path)
func Audited() {
	_ = make([]byte, 1) // clean: whole function audited
	helperAudited()
}

func helperAudited() {
	_ = make([]byte, 1) // clean: only reachable through Audited
}

//next700:hotpath
func LineEscape() {
	_ = make([]byte, 8) //next700:allowalloc(corpus: audited line)
	callAudited()       //next700:allowalloc(corpus: callee audited at the call site)
}

func callAudited() {
	_ = make([]byte, 8) // clean: descent stopped at the audited call site
}

// NotAnnotated allocates freely: without //next700:hotpath nothing applies.
func NotAnnotated() []byte {
	return make([]byte, 64)
}

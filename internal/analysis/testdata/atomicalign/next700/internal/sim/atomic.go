// Package sim exercises the atomicalign analyzer: 32-bit misalignment of
// 64-bit atomic fields, the false-sharing slice-element heuristic, and
// verification of cachepad claims.
package sim

import "sync/atomic"

// misaligned puts a uint64 at offset 4 under 32-bit struct layout rules.
type misaligned struct {
	flag uint32
	n    uint64 // want `atomic 64-bit field n is at offset 4 under 32-bit alignment rules`
}

func bump(m *misaligned) {
	atomic.AddUint64(&m.n, 1)
}

// aligned leads with the 64-bit field: offset 0 on every platform.
type aligned struct {
	n    uint64
	flag uint32
}

func bumpAligned(a *aligned) {
	atomic.AddUint64(&a.n, 1) // clean: offset 0
}

// wrapped uses the atomic wrapper type, which the runtime always aligns.
type wrapped struct {
	flag uint32
	n    atomic.Uint64
}

func bumpWrapped(w *wrapped) {
	w.n.Add(1) // clean: atomic.Uint64 is never flagged
}

// counter has atomically accessed fields and appears as a slice element
// below without a cachepad annotation.
type counter struct {
	hits uint64
}

func hit(c *counter) {
	atomic.AddUint64(&c.hits, 1)
}

var shared []counter // want `type counter has atomically accessed fields and is a slice element`

// padded owns its cache lines and says so; the claim checks out (sizeof 64).
//
//next700:cachepad(64)
type padded struct {
	hits uint64
	_    [56]byte
}

func hitPadded(p *padded) {
	atomic.AddUint64(&p.hits, 1)
}

var sharedPadded []padded // clean: annotated and the claim is true

// wrongpad claims padding it does not have: sizeof is 16, not a multiple
// of 64.
//
//next700:cachepad(64)
type wrongpad struct { // want `type wrongpad claims //next700:cachepad\(64\) but sizeof is 16`
	hits uint64
	_    [8]byte
}

//next700:cachepad(zero)
type badarg struct{ hits uint64 }

// want:-3 `next700:cachepad argument must be a positive byte count`

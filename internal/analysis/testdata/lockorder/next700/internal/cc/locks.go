// Package cc exercises the lockorder analyzer: a direct two-class
// inversion, a same-class self-loop, a transitive inversion through a call,
// and the lockorder(ordered) suppression.
package cc

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func lockAB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: B\.mu acquired while holding A\.mu, but the reverse order also exists`
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock-order cycle: A\.mu acquired while holding B\.mu, but the reverse order also exists`
	a.mu.Unlock()
	b.mu.Unlock()
}

func lockTwoInstances(x, y *A) {
	x.mu.Lock()
	y.mu.Lock() // want `lock-order cycle: second A\.mu instance acquired while one is held with no canonical order`
	y.mu.Unlock()
	x.mu.Unlock()
}

// lockOrderedPair acquires two instances of one class under an explicit
// order, so its self-edge is suppressed.
//
//next700:lockorder(ordered)
func lockOrderedPair(x, y *B) {
	x.mu.Lock()
	y.mu.Lock() // clean: annotated ordered
	y.mu.Unlock()
	x.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func lockCThenCallD(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock-order cycle: D\.mu acquired \(via cc\.lockD\) while holding C\.mu`
	c.mu.Unlock()
}

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func lockDThenC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lock-order cycle: C\.mu acquired while holding D\.mu, but the reverse order also exists`
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// lockEF is the only function relating E and F: one direction, no cycle.
func lockEF(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock() // clean: consistent order, no reverse edge anywhere
	f.mu.Unlock()
	e.mu.Unlock()
}

//next700:lockorder
// want:-1 `next700:lockorder requires a reason argument`

var keepVet = 0

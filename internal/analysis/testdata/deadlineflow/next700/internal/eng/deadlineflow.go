// Package eng exercises the deadlineflow analyzer: unbounded calls on hot
// paths when an Until sibling exists, dropped and misrouted deadline
// parameters, the deadline==0 opt-out proof, assignment-taint derivation,
// and both levels of the allowunbounded escape hatch.
package eng

type gate struct{ ch chan struct{} }

// Wait blocks until the gate opens.
func (g *gate) Wait() { <-g.ch }

// WaitUntil blocks until the gate opens or the deadline dl (ns) passes.
func (g *gate) WaitUntil(dl int64) bool {
	select {
	case <-g.ch:
		return true
	default:
		_ = dl
		return false
	}
}

// Open has no OpenUntil sibling: it is not part of a bounded/unbounded pair.
func (g *gate) Open() { close(g.ch) }

var g8 gate

//next700:hotpath
func Commit() {
	g8.Wait() // want `unbounded Wait reachable from a //next700:hotpath root`
}

func Apply(dl int64) {
	g8.Wait() // want `deadline parameter "dl" dropped before blocking call Wait`
}

func Flush(dl int64) {
	g8.WaitUntil(0) // want `deadline parameter "dl" is not threaded into WaitUntil`
}

func Drain(dl int64) {
	if dl != 0 {
		g8.WaitUntil(dl) // clean: the deadline is threaded through
	} else {
		g8.Wait() // clean: the deadline was proven zero on this branch
	}
}

func Budgeted(dl int64) {
	slack := dl / 2
	_ = g8.WaitUntil(slack) // clean: threaded via a value derived from dl
}

// Shutdown is a whole-function escape hatch.
//
//next700:allowunbounded(corpus: audited shutdown join)
func Shutdown(dl int64) {
	g8.Wait() // clean: function-level allowunbounded
}

//next700:hotpath
func Replay() {
	g8.Wait() //next700:allowunbounded(corpus: audited replay tail)
}

//next700:hotpath
func Probe() {
	g8.Open() // clean: Open has no OpenUntil sibling
}

func Background() {
	g8.Wait() // clean: not hot-reachable and no deadline parameter
}

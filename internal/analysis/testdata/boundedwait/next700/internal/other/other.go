// Package other sits outside the boundedwait scope (internal/{cc,wal,core});
// the same constructs are clean here.
package other

import "sync"

type q struct {
	cond *sync.Cond
	ch   chan int
}

func (x *q) wait() {
	x.cond.Wait() // clean: out of scope
}

func (x *q) recv() int {
	return <-x.ch // clean: out of scope
}

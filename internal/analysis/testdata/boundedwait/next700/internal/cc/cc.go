// Package cc exercises the boundedwait analyzer inside its scope
// (internal/cc): unbounded condition waits, escaping locks, bare channel
// receives, and the allowwait escape hatches.
package cc

import "sync"

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
}

func (q *queue) waitCond() {
	q.cond.Wait() // want `unbounded sync\.Cond\.Wait`
}

func (q *queue) escapingLock() {
	q.mu.Lock() // want `blocking q\.mu\.Lock\(\) escapes the function with no deadline bound`
}

func (q *queue) pairedLock() {
	q.mu.Lock()
	defer q.mu.Unlock() // clean: released in the same body
}

func (q *queue) tryLock() bool {
	return q.mu.TryLock() // clean: non-blocking acquisition
}

func (q *queue) bareRecv() int {
	return <-q.ch // want `unbounded channel receive`
}

func (q *queue) selectRecv(stop chan struct{}) int {
	// clean: a select is a scheduling choice, not an unbounded wait.
	select {
	case v := <-q.ch:
		return v
	case <-stop:
		return 0
	}
}

// waitAudited is a whole-function escape hatch.
//
//next700:allowwait(corpus: audited shutdown join)
func (q *queue) waitAudited() {
	<-q.ch // clean: function-level allowwait
}

func (q *queue) lineAudited() int {
	return <-q.ch //next700:allowwait(corpus: audited receive)
}

//next700:allowwait
// want:-1 `next700:allowwait requires a reason argument`

var keepVet = 0

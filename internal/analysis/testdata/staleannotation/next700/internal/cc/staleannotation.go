// Package cc exercises the staleannotation analyzer. The corpus test runs
// boundedwait (an owner) and then staleannotation: a suppression whose
// owner ran and reported nothing is stale; one that absorbed a finding is
// live; a verb whose owner is not in the run cannot be judged.
package cc

import "sync"

type box struct {
	mu sync.Mutex
	ch chan int
}

// liveWait: boundedwait would flag the bare receive; the annotation absorbs
// that finding, so it is live and staleannotation stays quiet.
func (b *box) liveWait() int {
	return <-b.ch //next700:allowwait(corpus: audited shutdown join)
}

// staleWait: nothing on the annotated line blocks; the wait this once
// excused has been fixed away and the suppression is rot.
func (b *box) staleWait() int {
	x := 1 //next700:allowwait(corpus: the wait this excused is gone)
	// want:-1 `stale suppression //next700:allowwait`
	return x
}

// staleFunc is a function-level waiver over a body with nothing to waive.
//
//next700:allowwait(corpus: the body no longer blocks)
func (b *box) staleFunc() {}

// want:-3 `stale suppression //next700:allowwait`

// unjudged: lockscope is not part of this corpus run, so its verb cannot be
// called stale even though nothing here holds a lock.
func (b *box) unjudged() int {
	return 2 //next700:locked(box.mu: owner analyzer not in this run)
}

// markerNotAudited: hotpath is a claim, not a suppression — never judged.
//
//next700:hotpath
func markerNotAudited() {}

var keepVet = 0

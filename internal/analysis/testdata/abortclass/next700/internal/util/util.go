// Package util sits outside the abortclass scope; ad-hoc errors are clean
// here.
package util

import "errors"

func adhoc() error {
	return errors.New("utility error") // clean: out of scope
}

// Package cc exercises the abortclass analyzer inside its scope: ad-hoc
// errors minted in function bodies, context-only fmt.Errorf, class wrapping,
// and the allowabort escape hatches.
package cc

import (
	"errors"
	"fmt"
)

// ErrConflict is a class sentinel: package-level errors.New IS the class and
// is never flagged.
var ErrConflict = errors.New("cc: conflict")

func adhoc() error {
	return errors.New("one-off") // want `unclassified error: errors\.New inside a function body`
}

func contextOnly(err error) error {
	return fmt.Errorf("commit failed: %v", err) // want `unclassified abort error: fmt\.Errorf without %w`
}

func wrapped(err error) error {
	return fmt.Errorf("commit failed: %w", ErrConflict) // clean: wraps a class
}

func dynamicFormat(format string, err error) error {
	return fmt.Errorf(format, err) // clean: non-constant formats get the benefit of the doubt
}

// validated is a whole-function escape hatch for config-time errors.
//
//next700:allowabort(corpus: config-time validation, no abort path)
func validated() error {
	return errors.New("bad config") // clean: function audited
}

func lineEscape() error {
	return errors.New("probe") //next700:allowabort(corpus: audited line)
}

//next700:allowabort
// want:-1 `next700:allowabort requires a reason argument`

var keepVet = 0

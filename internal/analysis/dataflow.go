package analysis

import (
	"go/ast"
)

// A forward dataflow solver over the CFG. Facts are string-keyed set
// elements (lock classes held, branch assumptions in force, tainted
// variables); the lattice is the powerset with either union join (may
// analysis: a fact holds if it holds on SOME path — lockscope's "possibly
// held" is this) or intersection join (must analysis: a fact holds only if
// it holds on EVERY path — the deadline-guard and classification-guard
// analyses are this).
//
// Transfer functions run at node granularity inside a block; analyzers get
// the same transfer replayed by Simulate with a visit callback fired before
// each node, so checks observe the exact program-point state the solver
// converged on.

// Facts is a set of dataflow facts.
type Facts map[string]bool

// Clone copies the fact set.
func (f Facts) Clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func (f Facts) equal(g Facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// FlowSpec configures one dataflow problem.
type FlowSpec struct {
	// May selects union join (default false = must/intersection join).
	May bool
	// Entry is the fact set at the function entry (nil = empty).
	Entry Facts
	// Transfer updates facts in place for one block node. It must be
	// deterministic and monotone in the facts it consumes.
	Transfer func(f Facts, n ast.Node)
	// Assume applies one branch assumption at block entry (nil = ignored).
	Assume func(f Facts, a Assumption)
}

// FlowResult carries the converged block-entry fact sets.
type FlowResult struct {
	cfg  *CFG
	spec *FlowSpec
	// In maps each block to its entry facts (before Assume and Nodes).
	In map[*Block]Facts
}

// SolveForward runs the worklist iteration to a fixpoint and returns the
// block-entry facts.
func SolveForward(cfg *CFG, spec *FlowSpec) *FlowResult {
	res := &FlowResult{cfg: cfg, spec: spec, In: make(map[*Block]Facts)}
	out := make(map[*Block]Facts)

	entry := spec.Entry
	if entry == nil {
		entry = Facts{}
	}
	res.In[cfg.Entry] = entry.Clone()

	// Worklist seeded with every block in index order (entry first). Blocks
	// with no computed predecessors contribute nothing to a join yet: for
	// must-analysis they are ⊤ (identity of intersection), for may ∅
	// (identity of union) — both are "skip".
	work := make([]*Block, 0, len(cfg.Blocks))
	inWork := make(map[*Block]bool)
	push := func(b *Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	for _, b := range cfg.Blocks {
		push(b)
	}

	// Step cap: the framework is monotone for the analyzers shipped here,
	// but a buggy transfer must degrade to partial facts, not hang the lint.
	maxSteps := (len(cfg.Blocks) + 1) * 256
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		// Join predecessors.
		var in Facts
		if b == cfg.Entry {
			in = entry.Clone()
		} else {
			first := true
			for _, p := range b.Preds {
				po, ok := out[p]
				if !ok {
					continue // not yet computed: join identity
				}
				if first {
					in = po.Clone()
					first = false
					continue
				}
				if spec.May {
					for k := range po {
						in[k] = true
					}
				} else {
					for k := range in {
						if !po[k] {
							delete(in, k)
						}
					}
				}
			}
			if in == nil {
				in = Facts{}
			}
		}
		res.In[b] = in

		// Transfer through assumptions and nodes.
		o := in.Clone()
		if spec.Assume != nil {
			for _, a := range b.Assume {
				spec.Assume(o, a)
			}
		}
		if spec.Transfer != nil {
			for _, n := range b.Nodes {
				spec.Transfer(o, n)
			}
		}
		if prev, ok := out[b]; !ok || !prev.equal(o) {
			out[b] = o
			for _, s := range b.Succs {
				push(s)
			}
		}
	}
	return res
}

// Simulate replays the transfer over every block, invoking visit with the
// program-point facts in force immediately before each node. Blocks are
// visited in index (source) order, so diagnostics come out deterministic.
func (r *FlowResult) Simulate(visit func(f Facts, b *Block, n ast.Node)) {
	for _, b := range r.cfg.Blocks {
		in, ok := r.In[b]
		if !ok {
			in = Facts{}
		}
		f := in.Clone()
		if r.spec.Assume != nil {
			for _, a := range b.Assume {
				r.spec.Assume(f, a)
			}
		}
		for _, n := range b.Nodes {
			visit(f, b, n)
			if r.spec.Transfer != nil {
				r.spec.Transfer(f, n)
			}
		}
	}
}

// inspectPoint walks the sub-AST of one block node in source order, skipping
// the bodies of nested function literals (separate analysis roots). The
// callback still sees the FuncLit node itself — creating the closure is an
// event at this program point even though its body runs elsewhere.
func inspectPoint(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		// A RangeStmt in a block is the loop-head definition point only: its
		// range expression was placed in the predecessor block and its body
		// statements live in their own blocks — descending here would visit
		// them twice. Only the key/value targets belong to this point.
		if r.Key != nil {
			inspectPoint(r.Key, fn)
		}
		if r.Value != nil {
			inspectPoint(r.Value, fn)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		cont := fn(x)
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return cont
	})
}

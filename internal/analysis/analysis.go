// Package analysis is the static-analysis counterpart of the engine's
// runtime gates: a small suite of whole-program analyzers that enforce, at
// lint time, the contracts every pluggable component must obey — the
// allocation-free commit hot path (bench/alloc_test.go checks it at
// runtime; the hotpath analyzer proves it over the call graph), the
// bounded-wait contract from the overload work (every blocking site
// deadline-aware or explicitly audited), typed abort classes, a
// cycle-free lock-acquisition order, and atomic-field alignment.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer / Pass / Diagnostic) but is built on the standard
// library alone: packages are enumerated with `go list -export -deps`,
// parsed with go/parser, and type-checked with go/types against the gc
// export data the toolchain already produced. That keeps the module free
// of third-party dependencies while remaining a drop-in conceptual match
// for go/analysis should the x/tools dependency ever be vendored; only
// the `go vet -vettool` unitchecker protocol is out of scope (it requires
// x/tools). Unlike go/analysis, a Pass here sees the whole program, not
// one package: the hot-path and lock-order contracts are transitive
// properties of the in-module call graph and cannot be checked
// package-by-package without a facts store.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name is the canonical analyzer name (e.g. "hotpath").
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// SuppressVerb is the //next700: directive verb that silences this
	// analyzer's findings ("" for analyzers with no escape hatch). The
	// framework applies it centrally in Reportf — line-level directives
	// suppress findings on their line, declaration-level directives
	// suppress findings anywhere in the annotated function — and records
	// every exercised directive for the staleannotation pass.
	SuppressVerb string
	// Run executes the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries a loaded program plus the reporting sink for one analyzer
// execution.
type Pass struct {
	Prog *Program

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos. If the analyzer declares a SuppressVerb
// and pos sits on an annotated line or inside an annotated declaration, the
// finding is recorded as suppressed instead, and the directive is marked
// used (the staleannotation pass reports directives that never fire).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	d := Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	if v := p.analyzer.SuppressVerb; v != "" {
		ann := p.Prog.Annotations()
		suppressed := ann.SuppressLine(p.Prog.Fset, pos, v)
		if decl := p.Prog.declAt(pos); decl != nil && ann.SuppressDecl(decl, v) {
			suppressed = true
		}
		if suppressed {
			p.Prog.Suppressed = append(p.Prog.Suppressed, d)
			return
		}
	}
	*p.diags = append(*p.diags, d)
}

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the import path (e.g. "next700/internal/cc").
	Path string
	// Dir is the on-disk package directory.
	Dir string
	// Files are the parsed compiled Go files (tests excluded).
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded, type-checked module (or a filtered subset of its
// packages) plus the shared artifacts analyzers draw on: the annotation
// index and the lazily built call graph.
type Program struct {
	Fset *token.FileSet
	// ModulePath is the module path of the analyzed tree (annotation scopes
	// and abort-class identities are expressed relative to it).
	ModulePath string
	Packages   []*Package
	// Suppressed accumulates findings silenced by //next700: directives
	// across Run calls, for machine-readable (-json) reporting.
	Suppressed []Diagnostic

	ann   *Annotations
	graph *CallGraph
	decls []declSpan
	ran   map[string]bool
}

// declSpan locates one function declaration for pos→decl resolution.
type declSpan struct {
	lo, hi token.Pos
	decl   *ast.FuncDecl
}

// declAt returns the function declaration whose source span contains pos
// (function literals resolve to their enclosing declaration), or nil.
func (p *Program) declAt(pos token.Pos) *ast.FuncDecl {
	if p.decls == nil {
		for _, pkg := range p.Packages {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.decls = append(p.decls, declSpan{fd.Pos(), fd.End(), fd})
					}
				}
			}
		}
		sort.Slice(p.decls, func(i, j int) bool { return p.decls[i].lo < p.decls[j].lo })
	}
	i := sort.Search(len(p.decls), func(i int) bool { return p.decls[i].hi >= pos })
	if i < len(p.decls) && p.decls[i].lo <= pos && pos < p.decls[i].hi {
		return p.decls[i].decl
	}
	return nil
}

// Ran reports whether the named analyzer already executed in a Run call on
// this program. The staleannotation pass audits only directives whose owning
// analyzer ran — a suppression cannot be called stale when nothing looked.
func (p *Program) Ran(name string) bool { return p.ran[name] }

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Packages {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Run executes the analyzers in order over the program and returns all
// diagnostics sorted by position. Annotation-grammar problems are surfaced
// under the analyzer that owns the offending verb, but only when that
// analyzer is part of this run (so a corpus for one analyzer is not
// polluted by another's annotation diagnostics).
func (p *Program) Run(analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	if p.ran == nil {
		p.ran = make(map[string]bool)
	}
	for _, a := range analyzers {
		pass := &Pass{Prog: p, analyzer: a, diags: &diags}
		for _, prob := range p.Annotations().Problems {
			if prob.Analyzer == a.Name {
				diags = append(diags, prob)
			}
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		p.ran[a.Name] = true
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// All returns the full analyzer suite in presentation order. The
// staleannotation pass is deliberately last: it audits the suppression
// directives the preceding analyzers consulted, so it must run after them.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAnalyzer,
		BoundedWaitAnalyzer,
		AbortClassAnalyzer,
		LockOrderAnalyzer,
		AtomicAlignAnalyzer,
		LockScopeAnalyzer,
		DeadlineFlowAnalyzer,
		TerminalAbortAnalyzer,
		StaleAnnotationAnalyzer,
	}
}

// ByName resolves an analyzer from the suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AtomicAlignAnalyzer enforces two layout contracts on shared counters:
//
//  1. Any struct field passed by address to a 64-bit sync/atomic operation
//     (atomic.AddUint64(&s.f, ...) and friends) must be 64-bit-aligned on
//     32-bit platforms, where Go only guarantees 4-byte struct alignment —
//     misalignment panics at runtime there (the condition staticcheck
//     SA1027 describes). Offsets are computed under GOARCH=386 sizes.
//     Fields of the atomic.Int64/Uint64 wrapper types are always safe (the
//     runtime aligns them) and never flagged.
//
//  2. Struct types used as slice elements while containing atomically
//     accessed fields are adjacent in memory and will false-share cache
//     lines between workers (the stats.CounterSet lesson). Such types must
//     be padded and annotated //next700:cachepad(N); the analyzer then
//     checks the claim — sizeof(T) must be a multiple of N — instead of
//     trusting it.
var AtomicAlignAnalyzer = &Analyzer{
	Name: "atomicalign",
	Doc:  "atomic fields must be 64-bit aligned; atomic slice elements cache-line padded",
	Run:  runAtomicAlign,
}

// atomic64Ops are the sync/atomic functions taking a *int64/*uint64 whose
// pointee must be 8-byte aligned.
var atomic64Ops = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(pass *Pass) error {
	prog := pass.Prog
	ann := prog.Annotations()

	// 32-bit sizes expose the alignment hazard; 64-bit platforms align
	// every word to 8 bytes anyway.
	sizes32 := types.SizesFor("gc", "386")
	sizes64 := types.SizesFor("gc", "amd64")

	// Step 1: find every struct field whose address flows into a 64-bit
	// atomic op, and every named struct type containing atomic-accessed
	// fields (any width) for the false-sharing check.
	type fieldUse struct {
		field *types.Var
		pos   ast.Expr
	}
	var uses []fieldUse
	atomicOwner := make(map[*types.Named]bool)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s := info.Selections[sel]
					if s == nil || s.Kind() != types.FieldVal {
						continue
					}
					field, ok := s.Obj().(*types.Var)
					if !ok {
						continue
					}
					if owner := namedRecv(s.Recv()); owner != nil {
						atomicOwner[owner] = true
					}
					if atomic64Ops[fn.Name()] {
						uses = append(uses, fieldUse{field, sel})
					}
				}
				return true
			})
		}
	}

	// Step 2: alignment check per 64-bit-accessed field under 32-bit sizes.
	reportedField := make(map[*types.Var]bool)
	for _, u := range uses {
		if reportedField[u.field] {
			continue
		}
		st, idx := owningStruct(prog, u.field)
		if st == nil {
			continue
		}
		off := fieldOffset(sizes32, st, idx)
		if off < 0 || off%8 == 0 {
			continue
		}
		reportedField[u.field] = true
		pass.Reportf(u.field.Pos(),
			"atomic 64-bit field %s is at offset %d under 32-bit alignment rules; move it to the front of the struct or pad so the offset is a multiple of 8 (or use atomic.Int64/Uint64)",
			u.field.Name(), off)
	}

	// Step 3: cachepad claims + false-sharing heuristic. Collect named
	// struct types used as direct slice element types anywhere in the
	// program.
	sliceElems := make(map[*types.Named]ast.Expr)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			info := pkg.Info
			ast.Inspect(file, func(n ast.Node) bool {
				at, ok := n.(*ast.ArrayType)
				if !ok {
					return true
				}
				tv, ok := info.Types[at.Elt]
				if !ok {
					return true
				}
				if named, ok := tv.Type.(*types.Named); ok {
					if _, isStruct := named.Underlying().(*types.Struct); isStruct {
						if _, seen := sliceElems[named]; !seen {
							sliceElems[named] = at.Elt
						}
					}
				}
				return true
			})
		}
	}
	for named, site := range sliceElems {
		// Does this element type (or an embedded field) own atomic fields?
		if !containsAtomicOwner(named, atomicOwner) {
			continue
		}
		if _, padded := ann.TypeDirective(named.Obj(), "cachepad"); !padded {
			pass.Reportf(site.Pos(),
				"type %s has atomically accessed fields and is a slice element: adjacent instances false-share cache lines; pad it and annotate //next700:cachepad(N)",
				named.Obj().Name())
		}
	}

	// Every cachepad claim is verified, whether or not the heuristic above
	// demanded it — an annotation that drifts from the actual layout is
	// worse than none.
	for obj, dirs := range ann.Types {
		for _, dir := range dirs {
			if dir.Verb != "cachepad" {
				continue
			}
			n, err := strconv.Atoi(strings.TrimSpace(dir.Arg))
			if err != nil || n <= 0 {
				pass.Reportf(dir.Pos, "next700:cachepad argument must be a positive byte count, got %q", dir.Arg)
				continue
			}
			sz := sizes64.Sizeof(obj.Type().Underlying())
			if sz%int64(n) != 0 {
				pass.Reportf(obj.Pos(),
					"type %s claims //next700:cachepad(%d) but sizeof is %d (not a multiple of %d); fix the padding array",
					obj.Name(), n, sz, n)
			}
		}
	}
	return nil
}

func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// containsAtomicOwner reports whether named (or a struct-typed field of it,
// embedded or not) is in the atomic-owner set — atomic.CounterSet wraps
// paddedCounter wraps Counter, and the atomic ops name Counter.
func containsAtomicOwner(named *types.Named, owners map[*types.Named]bool) bool {
	return containsAtomicOwnerRec(named, owners, make(map[*types.Named]bool))
}

func containsAtomicOwnerRec(named *types.Named, owners map[*types.Named]bool, seen map[*types.Named]bool) bool {
	if seen[named] {
		return false
	}
	seen[named] = true
	if owners[named] {
		return true
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if inner := namedRecv(ft); inner != nil {
			if _, isStruct := inner.Underlying().(*types.Struct); isStruct {
				if containsAtomicOwnerRec(inner, owners, seen) {
					return true
				}
			}
		}
	}
	return false
}

// owningStruct finds the struct type declaring field and its index.
func owningStruct(prog *Program, field *types.Var) (*types.Struct, int) {
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return st, i
				}
			}
		}
	}
	return nil, -1
}

// fieldOffset computes the byte offset of field idx in st under sizes.
func fieldOffset(sizes types.Sizes, st *types.Struct, idx int) int64 {
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := sizes.Offsetsof(fields)
	if idx >= len(offsets) {
		return -1
	}
	return offsets[idx]
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrderAnalyzer builds the static lock-acquisition graph across
// internal/cc and internal/wal and flags order inversions. Lock identity is
// the *lock class* "Type.field" — every sync.Mutex/RWMutex field of a named
// struct type is one class (all instances share it, so locking two
// different lockState.mu instances in an unordered way is still a
// same-class cycle). Edges:
//
//   - direct: class B locked while class A is held in the same body
//     (linear statement scan with a held-set; Unlock releases)
//   - transitive: an in-module call made while A is held contributes
//     A → C for every class C the callee (transitively) acquires
//
// Any cycle in the resulting class graph — including self-loops from
// acquiring two instances of the same class — is reported once per
// participating edge. //next700:lockorder(ordered) on a function asserts
// its same-class acquisitions are internally ordered (e.g. by sorted
// partition index) and suppresses the self-loop contribution; function
// literals are separate roots (a timer callback re-locking its parent's
// mutex runs on another goroutine and is not a nested acquisition).
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order across internal/cc and internal/wal must be cycle-free",
	Run:  runLockOrder,
}

var lockOrderScope = []string{"internal/cc", "internal/wal"}

// lockEdge is one A-held→B-acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	// viaCall names the callee for transitive edges ("" for direct).
	viaCall string
}

func runLockOrder(pass *Pass) error {
	prog := pass.Prog
	ann := prog.Annotations()
	graph := prog.Graph()

	// Scope the analysis to functions in the target packages.
	var nodes []*FuncNode
	for _, n := range graph.Nodes {
		if inScope(prog, n.Pkg, lockOrderScope) {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })

	// Per-function direct acquisitions and the held-set edge scan need the
	// transitive acquire sets of callees; compute those by fixpoint.
	acquires := make(map[*FuncNode]map[string]bool)
	for _, n := range nodes {
		acquires[n] = directLockClasses(prog, n)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, e := range n.Callees {
				if e.Callee == nil || e.Callee.Lit != nil {
					// Function-literal edges are excluded: the closures on
					// these paths (timer broadcasts, flusher bodies) run on
					// their own goroutines, where re-locking the parent's
					// mutex is a handoff, not a nested acquisition.
					continue
				}
				callee, ok := acquires[e.Callee]
				if !ok {
					continue
				}
				for c := range callee {
					if !acquires[n][c] {
						acquires[n][c] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge collection.
	var edges []lockEdge
	for _, n := range nodes {
		ordered := n.Decl != nil && ann.DeclHas(n.Decl, "lockorder")
		edges = append(edges, scanLockEdges(prog, ann, n, acquires, ordered)...)
	}

	// Cycle detection over the class graph: report every edge that sits on
	// a cycle (both A→B and B→A present for some chain). Use the strongly
	// connected components of the directed class graph.
	adj := make(map[string]map[string]lockEdge)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]lockEdge)
		}
		if _, dup := adj[e.from][e.to]; !dup {
			adj[e.from][e.to] = e
		}
	}
	sccOf := cyclicNodes(adj)
	reported := make(map[string]bool)
	for _, e := range edges {
		onCycle := e.from == e.to || (sccOf[e.from] != 0 && sccOf[e.from] == sccOf[e.to])
		if !onCycle {
			continue
		}
		key := e.from + "->" + e.to
		if reported[key] {
			continue
		}
		reported[key] = true
		if e.from == e.to {
			if e.viaCall != "" {
				pass.Reportf(e.pos, "lock-order cycle: %s re-acquired via call to %s while already held; order instances explicitly and annotate //next700:lockorder(ordered)", e.from, e.viaCall)
			} else {
				pass.Reportf(e.pos, "lock-order cycle: second %s instance acquired while one is held with no canonical order; sort instances first and annotate //next700:lockorder(ordered)", e.from)
			}
		} else if e.viaCall != "" {
			pass.Reportf(e.pos, "lock-order cycle: %s acquired (via %s) while holding %s, but the reverse order also exists", e.to, e.viaCall, e.from)
		} else {
			pass.Reportf(e.pos, "lock-order cycle: %s acquired while holding %s, but the reverse order also exists", e.to, e.from)
		}
	}
	return nil
}

// cyclicNodes runs Tarjan's SCC over the class graph and maps each node in
// a non-trivial SCC (size > 1, or self-loop) to its component id; nodes in
// trivial components map to 0.
func cyclicNodes(adj map[string]map[string]lockEdge) map[string]int {
	sccID := make(map[string]int)
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 1
	compID := 0

	var nodesList []string
	seen := make(map[string]bool)
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodesList = append(nodesList, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodesList = append(nodesList, to)
			}
		}
	}
	sort.Strings(nodesList)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			compID++
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			selfLoop := len(comp) == 1 && hasEdge(adj, comp[0], comp[0])
			if len(comp) > 1 || selfLoop {
				for _, w := range comp {
					sccID[w] = compID
				}
			}
		}
	}
	for _, v := range nodesList {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return sccID
}

func hasEdge(adj map[string]map[string]lockEdge, from, to string) bool {
	_, ok := adj[from][to]
	return ok
}

// lockClassOf returns the lock class ("Type.field") for the receiver of a
// sync.Mutex/RWMutex method call, or "" when the receiver is not a field
// selector on a named struct type (e.g. a local mutex).
func lockClassOf(info *types.Info, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	// Strip an index: p.locks[i] → p.locks.
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ast.Unparen(ix.X)
	}
	sel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	// Owner type: the named type the (possibly embedded) field chain starts
	// from.
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + sel.Sel.Name
}

// directLockClasses returns the classes directly locked anywhere in n.
func directLockClasses(prog *Program, n *FuncNode) map[string]bool {
	classes := make(map[string]bool)
	body := n.Body()
	if body == nil {
		return classes
	}
	info := n.Pkg.Info
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n.Lit {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, class := lockCall(info, call); kind == "Lock" || kind == "RLock" || kind == "TryLock" || kind == "TryRLock" {
			if class != "" {
				classes[class] = true
			}
		}
		return true
	})
	return classes
}

// lockCall classifies a call as a sync mutex operation, returning the
// method name and the receiver's lock class.
func lockCall(info *types.Info, call *ast.CallExpr) (kind, class string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	recv := methodRecvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", ""
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", ""
	}
	return fn.Name(), lockClassOf(info, sel.X)
}

// scanLockEdges walks n's body in source order maintaining the held-set and
// emits edges for nested acquisitions and for calls made under a lock. When
// ordered, same-class self-edges are skipped and the function's
// lockorder(ordered) directive is marked used for the staleannotation pass.
func scanLockEdges(prog *Program, ann *Annotations, n *FuncNode, acquires map[*FuncNode]map[string]bool, ordered bool) []lockEdge {
	body := n.Body()
	if body == nil {
		return nil
	}
	info := n.Pkg.Info
	var edges []lockEdge
	held := make(map[string]int) // class -> acquisition count
	var deferred []string        // classes with a deferred Unlock (held to return)

	heldClasses := func() []string {
		var out []string
		for c, cnt := range held {
			if cnt > 0 {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}

	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if node != n.Lit {
				return false
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps mu held for the rest of the scan but
			// does not release it at this point; other deferred calls are
			// ignored for the held-set.
			if kind, class := lockCall(info, x.Call); class != "" && (kind == "Unlock" || kind == "RUnlock") {
				deferred = append(deferred, class)
			}
			return false
		case *ast.CallExpr:
			kind, class := lockCall(info, x)
			switch kind {
			case "Lock", "RLock":
				for _, h := range heldClasses() {
					if h == class && ordered {
						ann.SuppressDecl(n.Decl, "lockorder")
						continue
					}
					edges = append(edges, lockEdge{from: h, to: class, pos: x.Pos()})
				}
				if class != "" {
					held[class]++
				}
				return true
			case "TryLock", "TryRLock":
				// Non-blocking: acquisition order is irrelevant for
				// deadlock (a TryLock failure is handled, not waited on),
				// but the class still becomes held on the success path.
				// Without path sensitivity, treat it as held from here.
				if class != "" {
					held[class]++
				}
				return true
			case "Unlock", "RUnlock":
				if class != "" && held[class] > 0 {
					held[class]--
				}
				return true
			}
			// A call made while holding locks contributes transitive edges
			// to everything the callee acquires.
			if len(held) > 0 {
				if callee := resolveCalleeNode(prog, n, x); callee != nil {
					calleeName := callee.Name()
					for c := range acquires[callee] {
						for _, h := range heldClasses() {
							if h == c && ordered {
								ann.SuppressDecl(n.Decl, "lockorder")
								continue
							}
							edges = append(edges, lockEdge{from: h, to: c, pos: x.Pos(), viaCall: calleeName})
						}
					}
				}
			}
		}
		return true
	}
	// Statement-ordered traversal: ast.Inspect visits in source order for
	// a single body, which approximates the linear held-set scan (branches
	// are merged optimistically — a lock released on one branch counts as
	// released).
	ast.Inspect(body, walk)
	_ = deferred
	return edges
}

// resolveCalleeNode maps a call expression to its in-program FuncNode (nil
// for out-of-program and unresolved calls). Interface calls resolve to nil
// here; their CHA expansion already exists as call-graph edges used by the
// transitive-acquires fixpoint, so held-set edges for interface calls are
// approximated through the caller's own acquire set.
func resolveCalleeNode(prog *Program, n *FuncNode, call *ast.CallExpr) *FuncNode {
	fn := calleeFunc(n.Pkg.Info, call)
	if fn == nil {
		return nil
	}
	return prog.Graph().ByObj[fn.Origin()]
}

package analysis

// The corpus runner mirrors golang.org/x/tools/go/analysis/analysistest:
// each analyzer has a mini-module under testdata/<analyzer>/next700 (the
// module is named next700 so the analyzers' path-suffix scoping matches the
// real tree), and corpus files carry expectations as comments:
//
//	code // want `regexp`
//	code // want `first` `second`      (two diagnostics on one line)
//	// want:-1 `regexp`                (diagnostic one line above — used for
//	                                    annotation-grammar problems, which are
//	                                    reported at the directive comment and
//	                                    cannot share its line)
//
// Regexps are backquoted Go raw strings. Every diagnostic must match a want
// on its exact file:line, and every want must match at least one diagnostic.

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile("//\\s*want(:-?\\d+)?\\s+(.*)$")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hits int
}

func runCorpus(t *testing.T, analyzerName string) {
	t.Helper()
	runCorpusSuite(t, analyzerName, analyzerName)
}

// runCorpusSuite runs several analyzers over one corpus. Most corpora need
// only their own analyzer; staleannotation additionally needs an owner
// analyzer in the run, since a directive is judged only when its owner
// actually looked.
func runCorpusSuite(t *testing.T, corpusName string, analyzerNames ...string) {
	t.Helper()
	var suite []*Analyzer
	for _, name := range analyzerNames {
		a := ByName(name)
		if a == nil {
			t.Fatalf("no analyzer %q", name)
		}
		suite = append(suite, a)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", corpusName, "next700"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading corpus: %v", err)
	}
	diags, err := prog.Run(suite...)
	if err != nil {
		t.Fatalf("running %s: %v", corpusName, err)
	}
	wants := collectWants(t, dir)

	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if filepath.Clean(w.file) == filepath.Clean(pos.Filename) && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hits++
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if w.hits == 0 {
			t.Errorf("%s:%d: want `%s` matched no diagnostic", w.file, w.line, w.text)
		}
	}
}

// collectWants scans every .go file under dir for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			offset := 0
			if m[1] != "" {
				offset, _ = strconv.Atoi(m[1][1:])
			}
			for _, pat := range backquoted(m[2]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, lineNo, pat, err)
				}
				wants = append(wants, &expectation{file: path, line: lineNo + offset, re: re, text: pat})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("corpus %s has no want expectations", dir)
	}
	return wants
}

// backquoted extracts the backquoted raw-string tokens from s.
func backquoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '`')
		if i < 0 {
			return out
		}
		s = s[i+1:]
		j := strings.IndexByte(s, '`')
		if j < 0 {
			return out
		}
		out = append(out, s[:j])
		s = s[j+1:]
	}
}

func TestHotPathCorpus(t *testing.T)       { runCorpus(t, "hotpath") }
func TestBoundedWaitCorpus(t *testing.T)   { runCorpus(t, "boundedwait") }
func TestAbortClassCorpus(t *testing.T)    { runCorpus(t, "abortclass") }
func TestLockOrderCorpus(t *testing.T)     { runCorpus(t, "lockorder") }
func TestAtomicAlignCorpus(t *testing.T)   { runCorpus(t, "atomicalign") }
func TestLockScopeCorpus(t *testing.T)     { runCorpus(t, "lockscope") }
func TestDeadlineFlowCorpus(t *testing.T)  { runCorpus(t, "deadlineflow") }
func TestTerminalAbortCorpus(t *testing.T) { runCorpus(t, "terminalabort") }

// Staleness verdicts require the audited verb's owner in the same run.
func TestStaleAnnotationCorpus(t *testing.T) {
	runCorpusSuite(t, "staleannotation", "boundedwait", "staleannotation")
}

// TestEveryAnalyzerHasCorpus pins the suite to the corpus tree in both
// directions: a new analyzer registered in All() cannot ship without a
// testdata corpus, and a renamed or removed analyzer cannot orphan one.
// Together with TestRepoLintClean and the lint driver — both of which
// enumerate via All() — no hard-coded analyzer list exists that a new
// analyzer could silently be missing from.
func TestEveryAnalyzerHasCorpus(t *testing.T) {
	inSuite := map[string]bool{}
	for _, a := range All() {
		inSuite[a.Name] = true
		if _, err := os.Stat(filepath.Join("testdata", a.Name, "next700", "go.mod")); err != nil {
			t.Errorf("analyzer %s has no corpus module: %v", a.Name, err)
		}
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && !inSuite[e.Name()] {
			t.Errorf("corpus dir testdata/%s names no analyzer in All()", e.Name())
		}
	}
}

// TestRepoLintClean runs the full suite over the real module and requires a
// clean bill — the same gate CI's lint lane applies. Reintroducing, say,
// sort.Slice in the write-index path fails this test, not just the lane.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; covered by the CI lint lane")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := prog.Run(All()...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		t.Errorf("%s: %s: %s", pos, d.Analyzer, d.Message)
	}
}

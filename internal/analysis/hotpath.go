package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAnalyzer enforces the engine's zero-allocation commit-path
// contract at lint time. Functions annotated //next700:hotpath must not
// allocate, transitively through every in-module callee (interface method
// calls expanded by CHA over the loaded program). Flagged constructs:
//
//   - make / new and pointer-to-composite or reference-kind composite
//     literals (&T{...}, []T{...}, map[...]{...})
//   - interface boxing: explicit conversions to interface types, and
//     non-pointer-shaped arguments passed to interface parameters
//   - closures (the func value itself allocates) and defer inside loops
//     (a straight-line defer is open-coded and free since go1.14; one in a
//     loop falls back to a heap-linked defer record per iteration)
//   - calls into fmt, errors.New, sort.Slice/SliceStable, and
//     time.Now/After/NewTimer/AfterFunc/Tick
//   - string<->[]byte conversions
//
// Escape hatch: //next700:allowalloc(reason) on a function (audited slow
// path — e.g. the 2PL timed-wait timer) or on the offending line.
//
// Out-of-module callees not on the banned list are assumed allocation-free;
// the runtime alloc gate (bench/alloc_test.go) closes that soundness gap.
var HotPathAnalyzer = &Analyzer{
	Name:         "hotpath",
	Doc:          "functions annotated //next700:hotpath must not allocate, transitively",
	SuppressVerb: "allowalloc",
	Run:          runHotPath,
}

// bannedCalls maps full function names to the reason they are banned on hot
// paths. These are out-of-module functions whose bodies the analyzer cannot
// see but which are known to allocate or to take unbounded time.
var bannedCalls = map[string]string{
	"errors.New":       "allocates a new error",
	"sort.Slice":       "allocates a closure-backed sort.Interface",
	"sort.SliceStable": "allocates a closure-backed sort.Interface",
	"time.Now":         "vDSO call + monotonic read on every transaction",
	"time.After":       "allocates a timer and channel that outlive the wait",
	"time.NewTimer":    "allocates a timer",
	"time.AfterFunc":   "allocates a timer",
	"time.Tick":        "leaks a ticker",
}

func runHotPath(pass *Pass) error {
	prog := pass.Prog
	ann := prog.Annotations()
	graph := prog.Graph()

	// Roots: every declared function carrying //next700:hotpath.
	var roots []*FuncNode
	for fn := range ann.Funcs {
		if ann.FuncHas(fn, "hotpath") && graph.ByObj[fn] != nil {
			roots = append(roots, graph.ByObj[fn])
		}
	}

	// BFS the in-module call graph from all roots; each reachable function
	// is checked once, attributed to the first root that reached it.
	type work struct {
		node *FuncNode
		root *FuncNode
	}
	visited := make(map[*FuncNode]bool)
	var queue []work
	for _, r := range roots {
		queue = append(queue, work{r, r})
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if visited[w.node] {
			continue
		}
		visited[w.node] = true
		if w.node.Obj != nil && ann.SuppressFunc(w.node.Obj, "allowalloc") {
			// Whole function audited: neither its body nor its callees are
			// held to the contract. SuppressFunc marks the directive used —
			// it exempted a subtree actually reachable from a hot root.
			continue
		}
		checkHotBody(pass, w.node, w.root)
		for _, e := range w.node.Callees {
			if e.Callee == nil || visited[e.Callee] {
				continue
			}
			if ann.SuppressLine(prog.Fset, e.Pos, "allowalloc") {
				// The call site is audited; don't descend.
				continue
			}
			queue = append(queue, work{e.Callee, w.root})
		}
	}
	return nil
}

// checkHotBody scans one function body for allocation sites.
func checkHotBody(pass *Pass, node *FuncNode, root *FuncNode) {
	body := node.Body()
	if body == nil {
		return
	}
	info := node.Pkg.Info
	via := ""
	if node != root {
		via = " (on hot path from " + root.Name() + ")"
	}
	// Suppression (line- and declaration-level allowalloc) is applied
	// centrally by Pass.Reportf.
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "hot path allocates: %s%s", what, via)
	}

	// Loop body spans, for the defer-in-loop rule: a defer whose position
	// falls inside any for/range body is not open-coded and allocates a
	// defer record every iteration.
	type span struct{ lo, hi token.Pos }
	var loops []span
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, span{x.Body.Pos(), x.Body.End()})
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, s := range loops {
			if s.lo <= pos && pos < s.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure creation")
			return false // the literal is its own call-graph root
		case *ast.DeferStmt:
			if inLoop(x.Pos()) {
				report(x.Pos(), "defer inside a loop (heap-allocates a defer record per iteration)")
			}
		case *ast.GoStmt:
			report(x.Pos(), "goroutine launch")
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "pointer to composite literal escapes")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(x.Pos(), "slice literal")
				case *types.Map:
					report(x.Pos(), "map literal")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, node, x, report)
		}
		return true
	})
}

func checkHotCall(pass *Pass, node *FuncNode, call *ast.CallExpr, report func(token.Pos, string)) {
	info := node.Pkg.Info

	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		// Explicit conversion T(x).
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		if from == nil {
			return
		}
		if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) && !pointerShaped(from) {
			report(call.Pos(), "interface conversion boxes a value")
		}
		if isString(to) && isByteSlice(from) || isByteSlice(to) && isString(from) {
			report(call.Pos(), "string<->[]byte conversion copies")
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	full := fn.Origin().FullName()
	if reason, banned := bannedCalls[full]; banned {
		report(call.Pos(), full+" ("+reason+")")
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		report(call.Pos(), "fmt."+fn.Name()+" (reflection-based formatting allocates)")
		return
	}

	// Interface boxing at call boundaries: a non-pointer-shaped concrete
	// argument passed to an interface parameter is heap-boxed.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing here
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) || pointerShaped(at) {
			continue
		}
		if bt, ok := at.Underlying().(*types.Basic); ok && bt.Info()&types.IsUntyped != 0 {
			continue // untyped constants box to smalls or are folded
		}
		report(arg.Pos(), "argument boxed into interface parameter")
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without heap boxing (pointers, channels, maps, funcs, unsafe pointers).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// AbortClassAnalyzer enforces the typed abort-class taxonomy: inside the
// engine packages (internal/cc, internal/wal, internal/core, internal/txn,
// internal/admission), errors minted inside function bodies must be
// classifiable — a caller has to be able to errors.Is them against a class
// sentinel (txn.ErrConflict, txn.ErrDeadlineExceeded, admission.ErrShed,
// wal.ErrLogFailed, ...) or classify them via fault.IsTransient. Flagged:
//
//   - errors.New inside a function body (an anonymous one-off error no
//     caller can classify; hoist it to a package-level sentinel — that IS
//     the class — or wrap an existing class)
//   - fmt.Errorf whose format string carries no %w verb (context without a
//     wrapped class strips classifiability)
//
// Package-level `var ErrX = errors.New(...)` declarations are the classes
// themselves and are never flagged. Escape hatch:
// //next700:allowabort(reason) on the function or line, for config-time
// validation errors that no abort path ever sees.
var AbortClassAnalyzer = &Analyzer{
	Name:         "abortclass",
	Doc:          "errors minted on engine abort paths must be typed classes or wrap one",
	SuppressVerb: "allowabort",
	Run:          runAbortClass,
}

var abortClassScope = []string{
	"internal/cc", "internal/wal", "internal/core", "internal/txn", "internal/admission",
}

func runAbortClass(pass *Pass) error {
	prog := pass.Prog
	// Suppression (line- and declaration-level allowabort) is applied
	// centrally by Pass.Reportf.
	for _, node := range prog.Graph().Nodes {
		if !inScope(prog, node.Pkg, abortClassScope) {
			continue
		}
		body := node.Body()
		if body == nil {
			continue
		}
		info := node.Pkg.Info
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != node.Lit {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			switch fn.Origin().FullName() {
			case "errors.New":
				pass.Reportf(call.Pos(), "unclassified error: errors.New inside a function body cannot be matched by callers; hoist to a package-level sentinel class or wrap a class with fmt.Errorf(\"...: %%w\", ErrX)")
			case "fmt.Errorf":
				if !errorfWrapsClass(info, call) {
					pass.Reportf(call.Pos(), "unclassified abort error: fmt.Errorf without %%w strips the abort class; wrap a typed class sentinel")
				}
			}
			return true
		})
	}
	return nil
}

// errorfWrapsClass reports whether the fmt.Errorf call's format string
// contains a %w verb (so the produced error wraps — and remains
// classifiable as — one of its argument errors). Non-constant format
// strings are given the benefit of the doubt.
func errorfWrapsClass(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}

package fault

import (
	"testing"
	"time"
)

func TestDeviceStallAndRelease(t *testing.T) {
	mem := &MemDevice{}
	d := NewDevice(mem, Plan{StallSyncAt: 2})
	if _, err := d.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	// First sync is before the planned stall.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Stalled() {
		t.Fatal("stalled before the planned sync")
	}

	done := make(chan error, 1)
	go func() { done <- d.Sync() }()
	// The second sync parks: it neither fails nor completes.
	deadline := time.Now().Add(2 * time.Second)
	for !d.Stalled() {
		if time.Now().After(deadline) {
			t.Fatal("second sync never stalled")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("stalled sync returned early: %v", err)
	default:
	}

	// Release unblocks it and the sync completes normally — the hang was
	// invisible to error handling.
	d.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released sync err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sync still parked after Release")
	}
	if mem.Syncs() != 2 {
		t.Fatalf("inner syncs = %d, want 2", mem.Syncs())
	}

	// Release disarms further planned stalls and is idempotent.
	d.Release()
	if err := d.Sync(); err != nil {
		t.Fatalf("post-release sync err = %v", err)
	}
	if d.Stalled() {
		t.Fatal("stalled after release disarmed the plan")
	}
}

func TestDeviceStallAutoRelease(t *testing.T) {
	d := NewDevice(&MemDevice{}, Plan{StallSyncAt: 1, StallRelease: 20 * time.Millisecond})
	start := time.Now()
	if err := d.Sync(); err != nil {
		t.Fatalf("auto-released sync err = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("sync returned in %v, too fast to have stalled", elapsed)
	}
	// The auto-release disarmed the plan: later syncs run clean.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

package fault

import (
	"errors"
	"io"
	"testing"

	"next700/internal/wal"
)

func storeManifest(streams int) wal.Manifest {
	return wal.Manifest{Streams: streams, Mode: "value"}
}

func TestMemStoreCrashAtOpIsSticky(t *testing.T) {
	s := NewMemStore(StoreChaos{CrashAtOp: 2})
	dev, err := s.CreateSegment("seg-000000-0") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveManifest(storeManifest(1)); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("expected crash, got %v", err)
	}
	// The manifest save did not take effect.
	if _, _, err := s.LoadManifest(); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("crashed save must not install a manifest: %v", err)
	}
	// Every further mutation fails, including the already created device.
	if _, err := dev.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("segment device must die with the store: %v", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("segment sync must die with the store: %v", err)
	}
	if err := s.RemoveSegment("seg-000000-0"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("remove after crash must fail: %v", err)
	}
	if err := s.WriteCheckpoint("ckpt-000001", func(io.Writer) error { return nil }); !errors.Is(err, ErrCrashed) {
		t.Fatalf("checkpoint write after crash must fail: %v", err)
	}
}

func TestMemStoreTornManifestFallsBack(t *testing.T) {
	s := NewMemStore(StoreChaos{TearManifestAtSave: 2})
	if err := s.SaveManifest(storeManifest(2)); err != nil {
		t.Fatal(err)
	}
	m2 := storeManifest(2)
	m2.Segments = []wal.ManifestSegment{{Stream: 0, Name: "seg-000001-0"}}
	if err := s.SaveManifest(m2); !errors.Is(err, ErrCrashed) {
		t.Fatalf("expected torn save crash, got %v", err)
	}
	got, fellBack, err := s.LoadManifest()
	if err != nil {
		t.Fatal(err)
	}
	if !fellBack {
		t.Fatal("torn current manifest must fall back to the previous copy")
	}
	if len(got.Segments) != 0 || got.Streams != 2 {
		t.Fatalf("fallback returned the wrong manifest: %+v", got)
	}
}

func TestMemStoreCheckpointFailInjection(t *testing.T) {
	s := NewMemStore(StoreChaos{FailCheckpointAt: 1})
	err := s.WriteCheckpoint("ckpt-000000", func(w io.Writer) error {
		_, werr := w.Write([]byte("image"))
		return werr
	})
	if !IsTransient(err) {
		t.Fatalf("injected checkpoint failure should be transient, got %v", err)
	}
	if names := s.CheckpointNames(); len(names) != 0 {
		t.Fatalf("failed write must not install an object: %v", names)
	}
	// The store itself is healthy: the next write succeeds.
	if err := s.WriteCheckpoint("ckpt-000000", func(w io.Writer) error {
		_, werr := w.Write([]byte("image"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if names := s.CheckpointNames(); len(names) != 1 {
		t.Fatalf("second write should install: %v", names)
	}
}

func TestMemStoreSurvivorKeepsSyncedPrefix(t *testing.T) {
	s := NewMemStore(StoreChaos{Seed: 7})
	dev, err := s.CreateSegment("seg-000000-0")
	if err != nil {
		t.Fatal(err)
	}
	dev.Write([]byte("durable!"))
	dev.Sync()
	dev.Write([]byte("maybe-lost"))
	if err := s.SaveManifest(storeManifest(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("ckpt-000001", func(w io.Writer) error {
		_, werr := w.Write([]byte("image"))
		return werr
	}); err != nil {
		t.Fatal(err)
	}

	sv := s.Survivor(StoreChaos{})
	rc, err := sv.OpenSegment("seg-000000-0")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if len(data) < len("durable!") || string(data[:8]) != "durable!" {
		t.Fatalf("synced prefix must survive: %q", data)
	}
	if len(data) > len("durable!")+len("maybe-lost") {
		t.Fatalf("survivor grew bytes that were never written: %q", data)
	}
	if _, _, err := sv.LoadManifest(); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.OpenCheckpoint("ckpt-000001"); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreFlipCheckpointByte(t *testing.T) {
	s := NewMemStore(StoreChaos{})
	if err := s.WriteCheckpoint("ckpt-000000", func(w io.Writer) error {
		_, werr := w.Write([]byte{1, 2, 3, 4})
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	if !s.FlipCheckpointByte("ckpt-000000", 2) {
		t.Fatal("flip on a valid offset must succeed")
	}
	if s.FlipCheckpointByte("ckpt-000000", 99) || s.FlipCheckpointByte("nope", 0) {
		t.Fatal("flip out of range must report false")
	}
	rc, _ := s.OpenCheckpoint("ckpt-000000")
	data, _ := io.ReadAll(rc)
	rc.Close()
	if data[2] != 3^0xFF {
		t.Fatalf("byte not flipped: %v", data)
	}
}

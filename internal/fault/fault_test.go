package fault

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"next700/internal/txn"
	"next700/internal/wal"
)

func TestMemDeviceWatermark(t *testing.T) {
	d := &MemDevice{}
	d.Write([]byte("abc"))
	if d.Len() != 3 || d.SyncedLen() != 0 {
		t.Fatalf("len=%d synced=%d", d.Len(), d.SyncedLen())
	}
	d.Sync()
	d.Write([]byte("de"))
	if d.SyncedLen() != 3 || d.Len() != 5 {
		t.Fatalf("len=%d synced=%d", d.Len(), d.SyncedLen())
	}
	if string(d.SyncedBytes()) != "abc" || string(d.Bytes()) != "abcde" {
		t.Fatalf("bytes %q synced %q", d.Bytes(), d.SyncedBytes())
	}
	if d.Syncs() != 1 {
		t.Fatalf("syncs %d", d.Syncs())
	}
}

func TestDeviceCrashTearsCrossingWrite(t *testing.T) {
	mem := &MemDevice{}
	d := NewDevice(mem, Plan{CrashAtByte: 10})
	if n, err := d.Write([]byte("0123456")); n != 7 || err != nil {
		t.Fatalf("pre-crash write: n=%d err=%v", n, err)
	}
	// This write crosses byte 10: 3 bytes land, the rest is torn off.
	n, err := d.Write([]byte("789abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write err=%v", err)
	}
	if n != 3 || mem.Len() != 10 {
		t.Fatalf("torn write kept n=%d, device holds %d", n, mem.Len())
	}
	if !d.Crashed() {
		t.Fatal("device not marked crashed")
	}
	// Everything after the crash fails sticky.
	if _, err := d.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err=%v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err=%v", err)
	}
	if mem.Len() != 10 || d.Written() != 10 {
		t.Fatalf("post-crash bytes leaked: mem=%d written=%d", mem.Len(), d.Written())
	}
}

func TestDeviceTransientSyncEvery(t *testing.T) {
	mem := &MemDevice{}
	d := NewDevice(mem, Plan{TransientSyncEvery: 3})
	var fails int
	for i := 0; i < 9; i++ {
		if err := d.Sync(); err != nil {
			if !errors.Is(err, ErrTransientSync) {
				t.Fatalf("sync %d: %v", i, err)
			}
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("injected %d transient failures, want 3", fails)
	}
	// The failure is transient: the immediate retry after an injected
	// failure succeeds.
	d2 := NewDevice(&MemDevice{}, Plan{TransientSyncEvery: 1})
	if err := d2.Sync(); !errors.Is(err, ErrTransientSync) {
		t.Fatal("every=1 must fail first sync")
	}
}

func TestDeviceDeterministicGivenPlan(t *testing.T) {
	run := func() []bool {
		d := NewDevice(&MemDevice{}, Plan{Seed: 99, TransientSyncProb: 0.5})
		var outcome []bool
		for i := 0; i < 32; i++ {
			outcome = append(outcome, d.Sync() == nil)
		}
		return outcome
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same plan diverged at sync %d", i)
		}
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{txn.ErrConflict, true},
		{fmt.Errorf("wrapped: %w", txn.ErrConflict), true},
		{ErrTransientSync, true},
		{fmt.Errorf("flush: %w", ErrTransientSync), true},
		{txn.ErrUserAbort, false},
		{txn.ErrNotFound, false},
		{ErrCrashed, false},
		{wal.ErrLogFailed, false},
		// Sticky wrapper around an exhausted transient: not retryable.
		{fmt.Errorf("%w: %w", wal.ErrLogFailed, ErrTransientSync), false},
		{errors.New("random"), false},
	}
	for i, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("case %d (%v): IsTransient=%v, want %v", i, c.err, got, c.want)
		}
	}
}

// TestWriterSurvivesTransientSyncs: the group-commit writer must absorb
// injected transient sync failures via bounded retry and still acknowledge
// durability for every record.
func TestWriterSurvivesTransientSyncs(t *testing.T) {
	mem := &MemDevice{}
	dev := NewDevice(mem, Plan{TransientSyncEvery: 2})
	w := wal.NewWriter(dev, 0)
	rec := (&wal.CommitRecord{TxnID: 1, Entries: []wal.Entry{
		{Kind: wal.EntryUpdate, Table: 1, RID: 2, Key: 3, Data: []byte("x")},
	}}).Encode(nil)
	for i := 0; i < 20; i++ {
		lsn, err := w.Append(rec)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := wal.Replay(bytes.NewReader(mem.SyncedBytes()), func(*wal.CommitRecord) error { return nil })
	if err != nil || n != 20 {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
}

// TestWriterCrashGoesSticky: after the device crashes, the writer must wake
// every waiter with ErrLogFailed and refuse further appends.
func TestWriterCrashGoesSticky(t *testing.T) {
	mem := &MemDevice{}
	dev := NewDevice(mem, Plan{CrashAtByte: 1}) // first write tears immediately
	w := wal.NewWriter(dev, 0)
	rec := (&wal.CommitRecord{TxnID: 1, Entries: []wal.Entry{
		{Kind: wal.EntryUpdate, Table: 1, RID: 2, Key: 3, Data: []byte("x")},
	}}).Encode(nil)
	lsn, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WaitDurable(lsn); !errors.Is(err, wal.ErrLogFailed) || !errors.Is(err, ErrCrashed) {
		t.Fatalf("WaitDurable err=%v, want ErrLogFailed wrapping ErrCrashed", err)
	}
	if !w.Failed() {
		t.Fatal("writer not marked failed")
	}
	if _, err := w.Append(rec); !errors.Is(err, wal.ErrLogFailed) {
		t.Fatalf("Append after crash err=%v", err)
	}
	if err := w.Close(); !errors.Is(err, wal.ErrLogFailed) {
		t.Fatalf("Close after crash err=%v", err)
	}
}

package fault

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"next700/internal/wal"
	"next700/internal/xrand"
)

// MemStore is the chaos checkpoint store: an in-memory implementation of
// the engine's CheckpointStore contract (it satisfies the interface
// structurally; this package cannot import core) whose mutations can crash
// at any scripted point in the checkpoint lifecycle. The torture harness
// uses it to prove that a crash landing between any two steps of a
// checkpoint cycle — mid-scan, after the checkpoint installs but before
// the manifest seals, after sealing but before truncation — still recovers
// to a prefix-consistent state.
//
// Crash semantics mirror a real disk behind the DirStore discipline:
//   - An installed checkpoint object survives whole (temp-and-rename).
//   - A checkpoint whose write crashes never appears at all.
//   - SaveManifest keeps the previous manifest as a fallback; a torn save
//     loses the current copy but never the previous one.
//   - Segment bytes survive to their synced watermark, plus a seeded
//     portion of the unsynced tail (the torn-tail crash model).
//
// After the scripted crash every mutation — including writes through
// previously created segment devices — fails with ErrCrashed, so the
// engine's log goes sticky exactly as it would on a died disk. Survivor()
// then reconstructs the post-reboot disk image to recover from.
type StoreChaos struct {
	// Seed drives the surviving length of unsynced segment tails in
	// Survivor.
	Seed uint64
	// CrashAtOp, when > 0, crashes the store at the Nth mutating operation
	// (1-based) — WriteCheckpoint, CreateSegment, SaveManifest,
	// RemoveCheckpoint, RemoveSegment all count. The operation fails with
	// ErrCrashed without taking effect, and the store is dead from then on.
	CrashAtOp int
	// TearManifestAtSave, when > 0, tears the Nth SaveManifest (1-based):
	// the current manifest is replaced by a truncated, unloadable image,
	// the previous manifest survives as the fallback, and the store
	// crashes sticky.
	TearManifestAtSave int
	// FailCheckpointAt, when > 0, fails the Nth WriteCheckpoint (1-based)
	// without installing an object and without crashing the store — the
	// clean cycle-failure path.
	FailCheckpointAt int
}

// MemStore implements the CheckpointStore contract in memory with planned
// chaos. The zero value is not usable; call NewMemStore.
type MemStore struct {
	mu    sync.Mutex
	chaos StoreChaos

	ops        int
	saves      int
	ckptWrites int
	crashed    bool

	checkpoints map[string][]byte
	segments    map[string]*MemDevice
	manifest    []byte // encoded current manifest (possibly torn)
	prev        []byte // encoded previous manifest
}

// NewMemStore builds an empty chaos store.
func NewMemStore(chaos StoreChaos) *MemStore {
	return &MemStore{
		chaos:       chaos,
		checkpoints: make(map[string][]byte),
		segments:    make(map[string]*MemDevice),
	}
}

// op gates one mutating operation, with s.mu held.
func (s *MemStore) op() error {
	if s.crashed {
		return ErrCrashed
	}
	s.ops++
	if c := s.chaos.CrashAtOp; c > 0 && s.ops >= c {
		s.crashed = true
		return fmt.Errorf("%w (store op %d)", ErrCrashed, s.ops)
	}
	return nil
}

// Crashed reports whether the scripted crash has fired.
func (s *MemStore) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// WriteCheckpoint implements the CheckpointStore contract: the object
// appears only if the producer and the store both succeed.
func (s *MemStore) WriteCheckpoint(name string, write func(w io.Writer) error) error {
	s.mu.Lock()
	if err := s.op(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.ckptWrites++
	inject := s.chaos.FailCheckpointAt > 0 && s.ckptWrites == s.chaos.FailCheckpointAt
	s.mu.Unlock()

	// The scan runs outside the store mutex: it reads the live engine and
	// may take a while.
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	if inject {
		return &TransientError{Op: "checkpoint write"}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	s.checkpoints[name] = append([]byte(nil), buf.Bytes()...)
	return nil
}

// OpenCheckpoint implements the CheckpointStore contract.
func (s *MemStore) OpenCheckpoint(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.checkpoints[name]
	if !ok {
		return nil, fmt.Errorf("fault: no checkpoint %q", name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// RemoveCheckpoint implements the CheckpointStore contract.
func (s *MemStore) RemoveCheckpoint(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.op(); err != nil {
		return err
	}
	delete(s.checkpoints, name)
	return nil
}

// CreateSegment implements the CheckpointStore contract. The returned
// device routes through the store's crash gate: once the store is dead,
// appends and syncs fail sticky, as on a died disk.
func (s *MemStore) CreateSegment(name string) (wal.Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.op(); err != nil {
		return nil, err
	}
	d := &MemDevice{}
	s.segments[name] = d
	return &storeSegment{s: s, d: d}, nil
}

// OpenSegment implements the CheckpointStore contract.
func (s *MemStore) OpenSegment(name string) (io.ReadCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.segments[name]
	if !ok {
		return nil, fmt.Errorf("fault: no segment %q", name)
	}
	return io.NopCloser(bytes.NewReader(d.Bytes())), nil
}

// RemoveSegment implements the CheckpointStore contract.
func (s *MemStore) RemoveSegment(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.op(); err != nil {
		return err
	}
	delete(s.segments, name)
	return nil
}

// SaveManifest implements the CheckpointStore contract with the
// current-plus-previous discipline of wal.SaveManifestFile.
func (s *MemStore) SaveManifest(m wal.Manifest) error {
	enc, err := wal.EncodeManifest(m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.op(); err != nil {
		return err
	}
	s.saves++
	if t := s.chaos.TearManifestAtSave; t > 0 && s.saves == t {
		if s.manifest != nil {
			s.prev = s.manifest
		}
		s.manifest = enc[:len(enc)/2]
		s.crashed = true
		return fmt.Errorf("%w (torn manifest save %d)", ErrCrashed, s.saves)
	}
	if s.manifest != nil {
		s.prev = s.manifest
	}
	s.manifest = enc
	return nil
}

// LoadManifest implements the CheckpointStore contract: the current copy,
// falling back to the previous one.
func (s *MemStore) LoadManifest() (wal.Manifest, bool, error) {
	s.mu.Lock()
	cur, prev := s.manifest, s.prev
	s.mu.Unlock()
	if cur != nil {
		if m, err := wal.DecodeManifest(cur); err == nil {
			return m, false, nil
		}
	}
	if prev != nil {
		if m, err := wal.DecodeManifest(prev); err == nil {
			return m, true, nil
		}
	}
	return wal.Manifest{}, false, fmt.Errorf("fault: no loadable manifest: %w", wal.ErrCorrupt)
}

// FlipCheckpointByte corrupts one byte of a stored checkpoint object,
// modeling at-rest media corruption. Reports whether the object existed
// and was long enough.
func (s *MemStore) FlipCheckpointByte(name string, offset int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data := s.checkpoints[name]
	if offset < 0 || offset >= len(data) {
		return false
	}
	data[offset] ^= 0xFF
	return true
}

// CheckpointNames returns the installed checkpoint object names.
func (s *MemStore) CheckpointNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.checkpoints))
	for n := range s.checkpoints {
		out = append(out, n)
	}
	return out
}

// SegmentNames returns the live segment names.
func (s *MemStore) SegmentNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.segments))
	for n := range s.segments {
		out = append(out, n)
	}
	return out
}

// TotalSegmentBytes sums all live segment contents — the measure the
// WAL-bounded torture lane asserts on.
func (s *MemStore) TotalSegmentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, d := range s.segments {
		n += int64(d.Len())
	}
	return n
}

// Survivor reconstructs the post-reboot disk image: installed checkpoints
// and manifests survive whole, segment bytes survive to their synced
// watermark plus a seeded cut of the unsynced tail. The survivor has no
// chaos of its own (pass chaos for the next incarnation's script).
func (s *MemStore) Survivor(chaos StoreChaos) *MemStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := xrand.New(s.chaos.Seed ^ 0x5eed)
	out := NewMemStore(chaos)
	for n, data := range s.checkpoints {
		out.checkpoints[n] = append([]byte(nil), data...)
	}
	if s.manifest != nil {
		out.manifest = append([]byte(nil), s.manifest...)
	}
	if s.prev != nil {
		out.prev = append([]byte(nil), s.prev...)
	}
	for n, d := range s.segments {
		all, synced := d.Bytes(), d.SyncedLen()
		keep := synced
		if tail := len(all) - synced; tail > 0 {
			keep += int(rng.Uint64n(uint64(tail + 1)))
		}
		nd := &MemDevice{}
		nd.Write(all[:keep])
		nd.Sync()
		out.segments[n] = nd
	}
	return out
}

// storeSegment routes a segment device through the store's crash gate.
type storeSegment struct {
	s *MemStore
	d *MemDevice
}

// Write implements wal.Device.
func (sg *storeSegment) Write(p []byte) (int, error) {
	sg.s.mu.Lock()
	crashed := sg.s.crashed
	sg.s.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return sg.d.Write(p)
}

// Sync implements wal.Device.
func (sg *storeSegment) Sync() error {
	sg.s.mu.Lock()
	crashed := sg.s.crashed
	sg.s.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return sg.d.Sync()
}

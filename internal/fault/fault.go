// Package fault provides deterministic, seed-driven fault injection for the
// durability path: a chaos wal.Device that tears writes at a planned byte
// offset, fails syncs transiently, and injects I/O latency; an in-memory
// MemDevice that tracks the synced watermark so a crash's surviving prefix
// can be reconstructed exactly; and the error classifier (IsTransient) the
// engine and harness share to decide whether an abort is worth retrying.
//
// Every injected behavior is a pure function of the Plan, including its
// Seed, so a failing torture seed replays identically. That discipline —
// durability and recovery as an independently verifiable component — is the
// unbundling argument of Lomet et al. applied to the design-space sweep:
// a point in the space is only trustworthy if it survives faults, not just
// the happy path.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"next700/internal/txn"
	"next700/internal/wal"
	"next700/internal/xrand"
)

// Plan scripts a Device's faults. The zero value injects nothing and adds
// no overhead beyond a mutex per operation.
type Plan struct {
	// Seed drives latency jitter and probabilistic sync failures. Two
	// devices with equal Plans inject identical fault sequences.
	Seed uint64
	// CrashAtByte, when > 0, crashes the device once that many bytes have
	// been written: the crossing write is torn at the boundary (a partial
	// final record on the device) and every later Write or Sync fails with
	// ErrCrashed, which is sticky.
	CrashAtByte int64
	// TransientSyncEvery, when > 0, fails every Nth Sync with a retryable
	// error (ErrTransientSync). The wal.Writer's bounded retry clears it.
	TransientSyncEvery int
	// TransientSyncProb additionally fails each Sync with this probability,
	// drawn from the seeded RNG (still deterministic given the Plan).
	TransientSyncProb float64
	// StallSyncAt, when > 0, hangs the device starting at the Nth Sync call
	// (1-based): the sync neither fails nor completes until Release is
	// called. Unlike a crash or sticky failure, a stall is the "gray
	// failure" a deadline must bound — the writer is healthy as far as
	// error reporting goes, it just never comes back.
	StallSyncAt int
	// StallRelease, when > 0, schedules an automatic Release that long
	// after the stall begins, so a seeded plan can model a device that
	// freezes and recovers without test orchestration.
	StallRelease time.Duration
	// WriteLatency and SyncLatency delay each operation; LatencyJitter adds
	// a seeded uniform extra in [0, LatencyJitter) on top of both.
	WriteLatency  time.Duration
	SyncLatency   time.Duration
	LatencyJitter time.Duration
	// WriteByteLatency adds a per-byte delay to each Write on top of
	// WriteLatency, modeling a bandwidth-limited device: a single log
	// stream serializes behind its own transfer time, which is what makes
	// splitting the log across streams pay off. One microsecond per byte
	// models ~1 MB/s.
	WriteByteLatency time.Duration
}

// ErrCrashed is the sticky error every operation returns at and after the
// planned crash point. It is not transient: no retry can resurrect the
// device.
var ErrCrashed = errors.New("fault: device crashed")

// TransientError is an injected failure that a retry may clear. It
// implements the Transient marker interface the wal.Writer's flush loop
// checks before going sticky.
type TransientError struct {
	// Op names the failed operation ("sync", "write").
	Op string
}

// Error implements error.
func (e *TransientError) Error() string {
	return "fault: injected transient " + e.Op + " failure"
}

// Transient marks the error retryable.
func (e *TransientError) Transient() bool { return true }

// ErrTransientSync is the injected transient sync failure.
var ErrTransientSync = &TransientError{Op: "sync"}

// IsTransient classifies an error as retryable: serialization conflicts
// (txn.ErrConflict) and self-declared transient device faults. Sticky log
// failure (wal.ErrLogFailed), device crashes, user aborts, and application
// errors are not transient — retrying them cannot succeed. The engine's
// retry loop and the torture/bench harnesses share this single judgment so
// an error class is never retried in one layer and fataled in another.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	// A sticky log failure may wrap a transient sync error (retries were
	// exhausted); the sticky wrapper wins.
	if errors.Is(err, wal.ErrLogFailed) || errors.Is(err, ErrCrashed) {
		return false
	}
	if errors.Is(err, txn.ErrConflict) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Device wraps an inner wal.Device with the Plan's faults. All state is
// guarded by a mutex; the wal.Writer's flusher is single-threaded, but
// tests may probe the device concurrently.
type Device struct {
	inner wal.Device
	plan  Plan

	mu       sync.Mutex
	rng      *xrand.RNG
	written  int64
	syncs    int
	crashed  bool
	stallCh  chan struct{} // non-nil once a stall has begun; closed on release
	released bool          // Release called: no further stalls
}

// NewDevice builds a chaos device over inner following plan.
func NewDevice(inner wal.Device, plan Plan) *Device {
	return &Device{inner: inner, plan: plan, rng: xrand.New(plan.Seed)}
}

// Write implements wal.Device. A write crossing the planned crash offset is
// torn: the prefix up to the offset reaches the inner device, the rest is
// lost, and the device is dead from then on.
func (d *Device) Write(p []byte) (int, error) {
	d.delay(d.plan.WriteLatency + d.plan.WriteByteLatency*time.Duration(len(p)))
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, ErrCrashed
	}
	if c := d.plan.CrashAtByte; c > 0 && d.written+int64(len(p)) > c {
		keep := int(c - d.written)
		if keep > 0 {
			n, _ := d.inner.Write(p[:keep])
			d.written += int64(n)
		}
		d.crashed = true
		return keep, fmt.Errorf("%w (torn write at byte %d)", ErrCrashed, c) //next700:allowalloc(chaos apparatus: the planned crash fires once per torture iteration)
	}
	n, err := d.inner.Write(p)
	d.written += int64(n)
	return n, err
}

// Sync implements wal.Device with planned transient failures and stalls.
// A stalled Sync parks until Release (explicit or via Plan.StallRelease)
// and then completes normally — the hang is invisible to error handling,
// which is exactly what makes it dangerous to unbounded waiters.
func (d *Device) Sync() error {
	d.delay(d.plan.SyncLatency)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return ErrCrashed
	}
	d.syncs++
	if at := d.plan.StallSyncAt; at > 0 && d.syncs >= at && !d.released {
		if d.stallCh == nil {
			d.stallCh = make(chan struct{}) //next700:allowalloc(chaos apparatus: the planned stall allocates once when it first fires)
			if d.plan.StallRelease > 0 {
				time.AfterFunc(d.plan.StallRelease, d.Release) //next700:allowalloc(chaos apparatus: release timer for the planned stall)
			}
		}
		ch := d.stallCh
		// Park outside the mutex so observers (Stalled, Written, Release
		// itself) stay responsive while the device hangs.
		d.mu.Unlock()
		<-ch
		d.mu.Lock()
		if d.crashed {
			return ErrCrashed
		}
	}
	if n := d.plan.TransientSyncEvery; n > 0 && d.syncs%n == 0 {
		return ErrTransientSync
	}
	if p := d.plan.TransientSyncProb; p > 0 && d.rng.Bool(p) {
		return ErrTransientSync
	}
	return d.inner.Sync()
}

// Release unblocks a stalled Sync and disarms any further planned stalls.
// Safe to call at any time, from any goroutine, more than once.
func (d *Device) Release() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.released = true
	if d.stallCh != nil {
		select {
		case <-d.stallCh:
			// already closed
		default:
			close(d.stallCh)
		}
	}
}

// Stalled reports whether a Sync is currently parked on the stall.
func (d *Device) Stalled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stallCh != nil && !d.released
}

// Crashed reports whether the planned crash point has been reached.
func (d *Device) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// Written returns the bytes that reached the inner device.
func (d *Device) Written() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// Syncs returns the number of Sync attempts observed (including injected
// failures).
func (d *Device) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// delay sleeps for base plus seeded jitter, outside the device mutex.
func (d *Device) delay(base time.Duration) {
	j := d.plan.LatencyJitter
	if base <= 0 && j <= 0 {
		return
	}
	dur := base
	if j > 0 {
		d.mu.Lock()
		dur += time.Duration(d.rng.Uint64n(uint64(j)))
		d.mu.Unlock()
	}
	if dur > 0 {
		time.Sleep(dur)
	}
}

// MemDevice is the in-memory wal.Device used by tests and the torture
// harness. It records every written byte and the synced watermark: bytes
// before the watermark are what a crash is guaranteed to preserve, bytes
// after it may or may not survive (the harness cuts them at a seeded
// offset to model an arbitrarily torn tail).
type MemDevice struct {
	mu     sync.Mutex
	data   []byte
	synced int
	syncs  int
}

// Write implements wal.Device.
func (d *MemDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.data = append(d.data, p...)
	return len(p), nil
}

// Sync implements wal.Device, advancing the durable watermark.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = len(d.data)
	d.syncs++
	return nil
}

// Bytes returns a copy of everything written, synced or not.
func (d *MemDevice) Bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data...)
}

// SyncedBytes returns a copy of the synced prefix — the bytes durability
// was acknowledged against.
func (d *MemDevice) SyncedBytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.data[:d.synced]...)
}

// Len returns the total bytes written.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.data)
}

// SyncedLen returns the synced watermark.
func (d *MemDevice) SyncedLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.synced
}

// Syncs returns the number of successful Sync calls.
func (d *MemDevice) Syncs() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs
}

// Package testutil holds shared test helpers. It must only be imported
// from _test files.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and returns a function to
// defer: it fails the test if, after a grace period, more goroutines are
// alive than at the snapshot. Use it around engine/writer lifecycles to
// prove that expired waiters and closed flushers do not stay parked on a
// cond or channel:
//
//	defer testutil.CheckGoroutines(t)()
//
// The checker polls because legitimately finished goroutines (timer
// callbacks, just-closed flushers) take a scheduler beat to unwind; only a
// count still elevated after ~2s is a leak.
func CheckGoroutines(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if after > before {
			t.Errorf("goroutine leak: %d before, %d after\n%s",
				before, after, stacks())
		}
	}
}

// stacks dumps all goroutine stacks, trimmed to keep failure output
// readable.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	if i := strings.Index(s, "\n\ngoroutine"); i > 0 && len(s) > 16*1024 {
		s = s[:16*1024] + "\n... (truncated)"
	}
	return s
}
